//! `rcw_serve` — stand up a [`rcw_server::RcwServer`] over trained models.
//!
//! Builds the CiteSeer stand-in, trains one classifier per requested engine
//! deterministically, and serves witness queries until a `POST /shutdown`
//! arrives:
//!
//! ```text
//! rcw_serve [--addr 127.0.0.1:0] [--workers 4] [--queue 256]
//!           [--deadline-ms N] [--io-timeout-ms N]
//!           [--scale tiny|small|full] [--seed 7] [--k 2]
//!           [--model SPEC]... [--shards N]
//!           [--faults SPEC] [--fault-seed N]
//! ```
//!
//! `--model` is repeatable and accepts two forms:
//!
//! * a bare model name (`appnp` | `gcn`) — the legacy single-engine form,
//!   combined with `--scale`, served at the bare endpoints;
//! * a routing spec `name=model:scale[:workers]` — registers an engine under
//!   the `/name/...` route prefix with its own model family, dataset scale,
//!   and per-query session-worker count, e.g.
//!   `--model gcn=gcn:tiny --model appnp=appnp:small:2`.
//!
//! The first `--model` is the default route (bare `/generate` goes to it).
//! The bound address is printed as the first stdout line
//! (`rcw-serve listening on http://HOST:PORT`), so callers binding port 0 can
//! discover the ephemeral port — the smoke test does exactly that. Every
//! startup failure likewise prints a first stdout line
//! (`rcw-serve: fatal: ...`, flushed) before exiting nonzero, so a spawning
//! test waiting for the announce sees a definite failure instead of silence.
//!
//! `--faults` installs a [`FaultPlan`] (spec grammar in [`rcw_server::faults`];
//! defaults to `RCW_FAULT_PLAN`/`RCW_FAULT_SEED` from the environment) across
//! the serving tier *and* every engine's repair path.
//!
//! `--shards N` (N ≥ 2) serves every engine through the sharded tier: the
//! graph is cut into N halo shards with one witness engine each plus a
//! full-graph escape engine ([`rcw_shard::ShardedEngine`]); queries route by
//! node ownership and `/stats` grows a per-engine `sharding` ledger
//! (`queries == routed + halo_escapes`).

use rcw_core::{RcwConfig, VerifiableModel, WitnessEngine};
use rcw_datasets::{citeseer, Scale};
use rcw_server::faults::FaultPlan;
use rcw_server::{RcwServer, ServedEngine, ServerConfig};
use rcw_shard::{RoutePolicy, ShardedEngine};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// One engine to build and register: route name, model family, dataset
/// scale, and per-query session workers.
struct EngineSpec {
    name: String,
    model: String,
    scale: Scale,
    session_workers: usize,
}

struct Options {
    addr: String,
    workers: usize,
    queue_bound: usize,
    default_deadline: Option<Duration>,
    io_timeout: Option<Duration>,
    scale: Scale,
    specs: Vec<EngineSpec>,
    seed: u64,
    k: usize,
    shards: usize,
    fault_spec: Option<String>,
    fault_seed: u64,
}

fn parse_scale(text: &str) -> Result<Scale, String> {
    match text {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(format!("unknown scale '{other}'")),
    }
}

/// Parses one `--model` value: either a bare model name (legacy, scale is
/// taken from `--scale` later) or `name=model:scale[:workers]`.
fn parse_model_spec(text: &str, default_scale: Scale) -> Result<EngineSpec, String> {
    let Some((name, rest)) = text.split_once('=') else {
        return Ok(EngineSpec {
            name: "default".to_string(),
            model: text.to_string(),
            scale: default_scale,
            session_workers: 1,
        });
    };
    let mut parts = rest.split(':');
    let model = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| format!("spec '{text}': missing model"))?;
    let scale = match parts.next() {
        Some(s) => parse_scale(s)?,
        None => default_scale,
    };
    let session_workers = match parts.next() {
        Some(w) => w
            .parse::<usize>()
            .ok()
            .filter(|&w| w >= 1)
            .ok_or_else(|| format!("spec '{text}': bad session worker count '{w}'"))?,
        None => 1,
    };
    if parts.next().is_some() {
        return Err(format!(
            "spec '{text}': expected name=model:scale[:workers]"
        ));
    }
    Ok(EngineSpec {
        name: name.to_string(),
        model: model.to_string(),
        scale,
        session_workers,
    })
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_bound: 256,
        default_deadline: None,
        io_timeout: None,
        scale: Scale::Tiny,
        specs: Vec::new(),
        seed: 7,
        k: 2,
        shards: 1,
        fault_spec: None,
        fault_seed: 0,
    };
    let mut model_flags: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {flag}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "invalid --workers".to_string())?
            }
            "--queue" => {
                opts.queue_bound = value("--queue")?
                    .parse()
                    .map_err(|_| "invalid --queue".to_string())?
            }
            "--deadline-ms" => {
                let ms: u64 = value("--deadline-ms")?
                    .parse()
                    .map_err(|_| "invalid --deadline-ms".to_string())?;
                opts.default_deadline = Some(Duration::from_millis(ms));
            }
            "--io-timeout-ms" => {
                let ms: u64 = value("--io-timeout-ms")?
                    .parse()
                    .map_err(|_| "invalid --io-timeout-ms".to_string())?;
                opts.io_timeout = Some(Duration::from_millis(ms));
            }
            "--faults" => opts.fault_spec = Some(value("--faults")?),
            "--fault-seed" => {
                opts.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|_| "invalid --fault-seed".to_string())?
            }
            "--scale" => opts.scale = parse_scale(&value("--scale")?)?,
            "--model" => model_flags.push(value("--model")?),
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed".to_string())?
            }
            "--k" => {
                opts.k = value("--k")?
                    .parse()
                    .map_err(|_| "invalid --k".to_string())?
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "invalid --shards (need an integer >= 1)".to_string())?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: rcw_serve [--addr A] [--workers N] [--queue N] [--deadline-ms N] \
                            [--io-timeout-ms N] [--scale tiny|small|full] [--seed S] [--k K] \
                            [--model appnp|gcn | --model name=model:scale[:workers]]... \
                            [--shards N] [--faults SPEC] [--fault-seed N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if model_flags.is_empty() {
        model_flags.push("appnp".to_string());
    }
    for text in &model_flags {
        opts.specs.push(parse_model_spec(text, opts.scale)?);
    }
    Ok(opts)
}

fn serve_config(k: usize) -> RcwConfig {
    RcwConfig {
        k,
        local_budget: 2,
        candidate_hops: 2,
        max_expand_rounds: 3,
        sampled_disturbances: 6,
        pri_rounds: 4,
        ppr_iters: 20,
        ..RcwConfig::default()
    }
}

/// Builds a single-engine route for a trained, leaked model.
fn leak_single<M: VerifiableModel>(
    graph: Arc<rcw_graph::Graph>,
    model: &'static M,
    cfg: RcwConfig,
    session_workers: usize,
    hook: Option<rcw_core::EngineFaultHook>,
) -> &'static dyn ServedEngine {
    let mut engine = WitnessEngine::new(graph, model, cfg).with_workers(session_workers);
    if let Some(hook) = hook {
        engine = engine.with_fault_hook(hook);
    }
    Box::leak(Box::new(engine))
}

/// Builds a sharded route: the graph is cut into `shards` halo shards whose
/// ring depth is the route policy's safety ball radius, so in-halo queries
/// actually route (a shallower ring would send everything to the escape
/// engine).
fn leak_sharded<M: VerifiableModel>(
    graph: Arc<rcw_graph::Graph>,
    model: &'static M,
    cfg: RcwConfig,
    shards: usize,
    session_workers: usize,
    hook: Option<rcw_core::EngineFaultHook>,
) -> &'static dyn ServedEngine {
    let halo = RoutePolicy::for_model(model, &cfg).ball_radius;
    let mut engine =
        ShardedEngine::new(graph, model, cfg, shards, halo).with_workers(session_workers);
    if let Some(hook) = hook {
        engine = engine.with_fault_hook(hook);
    }
    Box::leak(Box::new(engine))
}

/// Builds one engine from its spec. Models and engines live for the rest of
/// the process: leak them to get the `'static` borrows serving wants.
fn build_engine(
    spec: &EngineSpec,
    opts: &Options,
    faults: &Arc<FaultPlan>,
) -> Result<&'static dyn ServedEngine, String> {
    let ds = citeseer::build(spec.scale, opts.seed);
    eprintln!(
        "rcw-serve: route '{}': dataset {} (|V|={}, |E|={}), training {} (session workers {}, shards {})...",
        spec.name,
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        spec.model,
        spec.session_workers,
        opts.shards,
    );
    let graph = Arc::new(ds.graph.clone());
    let cfg = serve_config(opts.k);
    // The fault plan reaches into the engine's repair path through the hook;
    // the empty plan installs nothing (the hook is the only per-repair cost).
    let hook = (!faults.is_empty()).then(|| faults.engine_hook());
    let engine: &'static dyn ServedEngine = match spec.model.as_str() {
        "appnp" => {
            let appnp = Box::leak(Box::new(ds.train_appnp(16, opts.seed)));
            if opts.shards > 1 {
                leak_sharded(graph, appnp, cfg, opts.shards, spec.session_workers, hook)
            } else {
                leak_single(graph, appnp, cfg, spec.session_workers, hook)
            }
        }
        "gcn" => {
            let gcn = Box::leak(Box::new(ds.train_gcn(16, opts.seed)));
            if opts.shards > 1 {
                leak_sharded(graph, gcn, cfg, opts.shards, spec.session_workers, hook)
            } else {
                leak_single(graph, gcn, cfg, spec.session_workers, hook)
            }
        }
        other => return Err(format!("unknown model '{other}' (use appnp or gcn)")),
    };
    Ok(engine)
}

/// Fatal startup error: announced on *stdout* (flushed) so a caller waiting
/// for the listening line sees a definite failure line instead of silence,
/// mirrored to stderr, then a nonzero exit.
fn fail(message: &str) -> ExitCode {
    use std::io::Write;
    println!("rcw-serve: fatal: {message}");
    let _ = std::io::stdout().flush();
    eprintln!("rcw-serve: {message}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(message) => return fail(&message),
    };

    let faults = match &opts.fault_spec {
        Some(spec) => match FaultPlan::parse(spec, opts.fault_seed) {
            Ok(plan) => Arc::new(plan),
            Err(message) => return fail(&message),
        },
        None => match FaultPlan::from_env() {
            Ok(plan) => Arc::new(plan),
            Err(message) => return fail(&message),
        },
    };
    if !faults.is_empty() {
        eprintln!("rcw-serve: fault plan active (seed {})", opts.fault_seed);
    }

    let mut config = ServerConfig {
        routes: Vec::new(),
        workers: opts.workers,
        queue_bound: opts.queue_bound,
        default_deadline: opts.default_deadline,
        io_timeout: opts.io_timeout.unwrap_or(Duration::from_secs(5)),
        faults: Arc::clone(&faults),
    };
    for spec in &opts.specs {
        match build_engine(spec, &opts, &faults) {
            Ok(engine) => config = config.with_route(spec.name.clone(), engine),
            Err(message) => return fail(&message),
        }
    }
    if let Err(message) = config.validate() {
        return fail(&message);
    }

    let server = match RcwServer::bind(&opts.addr) {
        Ok(server) => server,
        Err(e) => return fail(&format!("cannot bind {}: {e}", opts.addr)),
    };
    // First stdout line is machine-readable: callers on port 0 parse the
    // ephemeral port from it.
    println!("rcw-serve listening on http://{}", server.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();
    match server.serve_config(&config) {
        Ok(report) => {
            println!(
                "rcw-serve: shut down after {} requests over {} connections {:?} \
                 ({} shed, {} past deadline, {} worker restarts)",
                report.requests_total(),
                report.connections,
                report.requests_per_worker,
                report.overloaded,
                report.deadline_rejections,
                report.worker_restarts,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("serve failed: {e}")),
    }
}
