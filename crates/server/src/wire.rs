//! The line-oriented JSON wire format.
//!
//! The workspace builds without external crates, so both halves of the codec
//! are hand-rolled here: a small [`Json`] value type with a recursive-descent
//! parser and serializer, and on top of it the first public, stable
//! serialization of the domain types a serving layer exchanges —
//! [`Witness`], [`Disturbance`], [`EngineStats`] / [`EngineSnapshot`],
//! [`DisturbReport`], and generation results.
//!
//! Encodings are stable by construction: object keys are written in a fixed
//! order, integers are emitted without a fractional part, and every decoder
//! rejects malformed input with a positioned [`WireError`] instead of
//! panicking — the server feeds it untrusted bytes.

use rcw_core::{DisturbReport, EngineSnapshot, EngineStats, GenerationResult, WitnessLevel};
use rcw_core::{GenerationStats, RepairOutcome, Witness};
use rcw_graph::{Disturbance, EdgeSubgraph, NodeId};
use rcw_shard::ShardStats;
use std::fmt;
use std::time::Duration;

/// Maximum nesting depth the parser accepts — far above anything the wire
/// format produces, low enough that hostile input cannot overflow the stack.
const MAX_DEPTH: usize = 64;

/// The wire protocol version this build speaks. Every HTTP body — request
/// and response, success and error — carries it as a top-level `"v"` field;
/// body decoders reject missing or unsupported versions with a typed error.
/// Type-level codecs ([`witness_to_json`], [`generation_to_json`], …) stay
/// unversioned: the envelope belongs to the transport body, not the types.
pub const WIRE_VERSION: u64 = 1;

/// Wraps a body object in the v1 envelope by prepending `"v": 1`.
pub fn versioned(body: Json) -> Json {
    match body {
        Json::Obj(mut fields) => {
            fields.insert(0, ("v".to_string(), Json::num(WIRE_VERSION)));
            Json::Obj(fields)
        }
        other => Json::Obj(vec![
            ("v".to_string(), Json::num(WIRE_VERSION)),
            ("body".to_string(), other),
        ]),
    }
}

/// Typed error for an unsupported `"v"` value.
fn unsupported_version(v: u64) -> WireError {
    WireError::decode(format!(
        "unsupported wire version {v} (this build speaks v{WIRE_VERSION})"
    ))
}

/// Checks a parsed body's version envelope: the top-level `"v"` field must
/// be present and equal to [`WIRE_VERSION`]. Missing and future versions are
/// both typed decode errors, so a v2 peer gets a deterministic rejection
/// instead of a field-by-field parse failure.
pub fn check_version(body: &Json) -> Result<(), WireError> {
    let v = body.field("v")?.as_u64()?;
    if v != WIRE_VERSION {
        return Err(unsupported_version(v));
    }
    Ok(())
}

/// Error produced when parsing or decoding wire data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset of the offending input, when known.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl WireError {
    fn new(pos: usize, message: impl Into<String>) -> Self {
        WireError {
            pos,
            message: message.into(),
        }
    }

    /// A decode-level error (no meaningful byte position).
    pub fn decode(message: impl Into<String>) -> Self {
        WireError::new(0, message)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for WireError {}

/// A JSON value. Objects preserve insertion order so encodings are stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers round-trip exactly up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a JSON document (must be a single value, whole input).
    pub fn parse(text: &str) -> Result<Json, WireError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(WireError::new(p.pos, "trailing characters after value"));
        }
        Ok(v)
    }

    /// Serializes the value to compact JSON.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    push_i64(out, *x as i64);
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Field lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required-field lookup, with a decode error naming the key.
    pub fn field(&self, key: &str) -> Result<&Json, WireError> {
        self.get(key)
            .ok_or_else(|| WireError::decode(format!("missing field '{key}'")))
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Result<f64, WireError> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(WireError::decode(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a non-negative integer (rejects fractional numbers).
    pub fn as_u64(&self) -> Result<u64, WireError> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 || x > 9.0e15 {
            return Err(WireError::decode(format!(
                "expected non-negative integer, got {x}"
            )));
        }
        Ok(x as u64)
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, WireError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Result<bool, WireError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(WireError::decode(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, WireError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(WireError::decode(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Result<&[Json], WireError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(WireError::decode(format!("expected array, got {other:?}"))),
        }
    }

    /// Convenience: an object from key–value pairs.
    pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience: a number from any unsigned integer.
    pub fn num(x: impl Into<u64>) -> Json {
        Json::Num(x.into() as f64)
    }

    /// Convenience: an array of `usize` values.
    pub fn nums(xs: impl IntoIterator<Item = usize>) -> Json {
        Json::Arr(xs.into_iter().map(|x| Json::Num(x as f64)).collect())
    }
}

/// Appends a decimal integer without any intermediate allocation (the
/// `format!` path costs a heap `String` per number, which dominates encode
/// time on number-heavy payloads like witnesses).
fn push_i64(out: &mut String, x: i64) {
    if x < 0 {
        out.push('-');
    }
    push_u64(out, x.unsigned_abs());
}

pub(crate) fn push_u64(out: &mut String, mut x: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    // Copy maximal escape-free runs in one go; every byte that needs an
    // escape is ASCII, so byte positions are valid char boundaries.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: Option<&str> = match b {
            b'"' => Some("\\\""),
            b'\\' => Some("\\\\"),
            b'\n' => Some("\\n"),
            b'\r' => Some("\\r"),
            b'\t' => Some("\\t"),
            b if b < 0x20 => None,
            _ => continue,
        };
        out.push_str(&s[start..i]);
        match escape {
            Some(text) => out.push_str(text),
            None => out.push_str(&format!("\\u{:04x}", b)),
        }
        start = i + 1;
    }
    out.push_str(&s[start..]);
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(WireError::new(
                self.pos,
                format!("expected '{}'", b as char),
            ))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(WireError::new(self.pos, "nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            None => Err(WireError::new(self.pos, "unexpected end of input")),
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(WireError::new(
                self.pos,
                format!("unexpected character '{}'", c as char),
            )),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(WireError::new(self.pos, format!("expected '{text}'")))
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Fast path: a plain short integer run (the overwhelming case on
        // this wire — node ids, edge endpoints, counters) skips the std
        // float parser entirely.
        let digits_start = self.pos;
        let mut int_val: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            int_val = int_val * 10 + (b - b'0') as u64;
            self.pos += 1;
            if self.pos - digits_start > 15 {
                break;
            }
        }
        let plain_int = self.pos > digits_start
            && self.pos - digits_start <= 15
            && !matches!(
                self.peek(),
                Some(b'.' | b'e' | b'E' | b'+' | b'-' | b'0'..=b'9')
            );
        if plain_int {
            let x = int_val as f64;
            return Ok(Json::Num(if negative { -x } else { x }));
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| WireError::new(start, "invalid number bytes"))?;
        let x: f64 = text
            .parse()
            .map_err(|_| WireError::new(start, format!("invalid number '{text}'")))?;
        if !x.is_finite() {
            return Err(WireError::new(start, "non-finite number"));
        }
        Ok(Json::Num(x))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(WireError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(WireError::new(self.pos, "truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| WireError::new(self.pos, "invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| WireError::new(self.pos, "invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this wire
                            // format; reject them instead of mis-decoding.
                            let c = char::from_u32(code).ok_or_else(|| {
                                WireError::new(self.pos, "unsupported \\u code point")
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(WireError::new(self.pos, "invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the maximal run up to the next quote or escape in
                    // one validation pass. The stop bytes are ASCII, so in
                    // valid UTF-8 the run never ends mid-character; a lone
                    // control byte still moves one scalar at a time.
                    let rest = &self.bytes[self.pos..];
                    let mut n = 0;
                    while n < rest.len() && rest[n] != b'"' && rest[n] != b'\\' && rest[n] >= 0x20 {
                        n += 1;
                    }
                    let n = n.max(utf8_len(rest[0])).min(rest.len());
                    let chunk = std::str::from_utf8(&rest[..n])
                        .map_err(|_| WireError::new(self.pos, "invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(WireError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(WireError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// Direct struct-level parsing (hot serving path)
//
// The tree codec above allocates a `Json` node per value — fine for control
// endpoints, but a warm `/generate` answer is ~100 numbers and the tree walk
// costs more than the engine's store hit. These readers decode the known
// response shapes straight into their structs, one `Vec` per array and zero
// per-number work beyond the digits.
// ---------------------------------------------------------------------------

impl<'a> Parser<'a> {
    /// Walks an object's fields, handing each key to `visit` with the parser
    /// positioned at the value. Keys must be escape-free (ours always are).
    fn fields(
        &mut self,
        mut visit: impl FnMut(&mut Self, &str) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        self.skip_ws();
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.raw_str()?;
            self.skip_ws();
            self.expect(b':')?;
            visit(self, key)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(WireError::new(self.pos, "expected ',' or '}'")),
            }
        }
    }

    /// A quoted string borrowed from the input. Rejects escapes instead of
    /// decoding them: no key or enum value on this wire ever needs one.
    fn raw_str(&mut self) -> Result<&'a str, WireError> {
        self.skip_ws();
        self.expect(b'"')?;
        let bytes = self.bytes;
        let start = self.pos;
        loop {
            match self.peek() {
                None => return Err(WireError::new(self.pos, "unterminated string")),
                Some(b'"') => {
                    let end = self.pos;
                    self.pos += 1;
                    return std::str::from_utf8(&bytes[start..end])
                        .map_err(|_| WireError::new(start, "invalid utf-8"));
                }
                Some(b'\\') => {
                    return Err(WireError::new(self.pos, "unexpected escape in bare string"))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    /// A non-negative integer value (rejects floats and exponents).
    fn usize_value(&mut self) -> Result<usize, WireError> {
        self.skip_ws();
        let start = self.pos;
        let mut value: u64 = 0;
        while let Some(b @ b'0'..=b'9') = self.peek() {
            value = value * 10 + (b - b'0') as u64;
            self.pos += 1;
            if self.pos - start > 15 {
                return Err(WireError::new(start, "integer too large"));
            }
        }
        if self.pos == start {
            return Err(WireError::new(start, "expected non-negative integer"));
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(WireError::new(start, "expected integer, got float"));
        }
        Ok(value as usize)
    }

    fn bool_value(&mut self) -> Result<bool, WireError> {
        self.skip_ws();
        match self.peek() {
            Some(b't') => self.literal("true", Json::Null).map(|_| true),
            Some(b'f') => self.literal("false", Json::Null).map(|_| false),
            _ => Err(WireError::new(self.pos, "expected bool")),
        }
    }

    /// The `"v"` envelope value: an integer equal to [`WIRE_VERSION`].
    fn version_value(&mut self) -> Result<u64, WireError> {
        let v = self.usize_value()? as u64;
        if v != WIRE_VERSION {
            return Err(unsupported_version(v));
        }
        Ok(v)
    }

    /// Iterates a JSON array, calling `visit` once per element.
    fn elements(
        &mut self,
        mut visit: impl FnMut(&mut Self) -> Result<(), WireError>,
    ) -> Result<(), WireError> {
        self.skip_ws();
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            visit(self)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(WireError::new(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn usize_array(&mut self) -> Result<Vec<usize>, WireError> {
        let mut out = Vec::new();
        self.elements(|p| {
            out.push(p.usize_value()?);
            Ok(())
        })?;
        Ok(out)
    }

    /// An array of `[u, v]` pairs, with no per-pair tree nodes.
    fn edge_array(&mut self) -> Result<Vec<(usize, usize)>, WireError> {
        let mut out = Vec::new();
        self.elements(|p| {
            p.skip_ws();
            p.expect(b'[')?;
            let u = p.usize_value()?;
            p.skip_ws();
            p.expect(b',')?;
            let v = p.usize_value()?;
            p.skip_ws();
            p.expect(b']')?;
            out.push((u, v));
            Ok(())
        })?;
        Ok(out)
    }

    fn witness_value(&mut self) -> Result<Witness, WireError> {
        let (mut nodes, mut edges, mut test_nodes, mut labels) = (None, None, None, None);
        self.fields(|p, key| {
            match key {
                "nodes" => nodes = Some(p.usize_array()?),
                "edges" => edges = Some(p.edge_array()?),
                "test_nodes" => test_nodes = Some(p.usize_array()?),
                "labels" => labels = Some(p.usize_array()?),
                other => return Err(WireError::decode(format!("unexpected field '{other}'"))),
            }
            Ok(())
        })?;
        witness_from_parts(
            required(nodes, "nodes")?,
            required(edges, "edges")?,
            required(test_nodes, "test_nodes")?,
            required(labels, "labels")?,
        )
    }

    fn generation_stats_value(&mut self) -> Result<GenerationStats, WireError> {
        let (mut inference_calls, mut disturbances_verified, mut expand_rounds, mut elapsed_us) =
            (None, None, None, None);
        self.fields(|p, key| {
            match key {
                "inference_calls" => inference_calls = Some(p.usize_value()?),
                "disturbances_verified" => disturbances_verified = Some(p.usize_value()?),
                "expand_rounds" => expand_rounds = Some(p.usize_value()?),
                "elapsed_us" => elapsed_us = Some(p.usize_value()?),
                other => return Err(WireError::decode(format!("unexpected field '{other}'"))),
            }
            Ok(())
        })?;
        Ok(GenerationStats {
            inference_calls: required(inference_calls, "inference_calls")?,
            disturbances_verified: required(disturbances_verified, "disturbances_verified")?,
            expand_rounds: required(expand_rounds, "expand_rounds")?,
            elapsed: Duration::from_micros(required(elapsed_us, "elapsed_us")? as u64),
        })
    }

    fn generation_value(&mut self) -> Result<GenerationResult, WireError> {
        let (mut witness, mut level, mut nontrivial, mut stale, mut stats) =
            (None, None, None, None, None);
        self.fields(|p, key| {
            match key {
                "witness" => witness = Some(p.witness_value()?),
                "level" => level = Some(level_from_str(p.raw_str()?)?),
                "nontrivial" => nontrivial = Some(p.bool_value()?),
                "stale" => stale = Some(p.bool_value()?),
                "stats" => stats = Some(p.generation_stats_value()?),
                other => return Err(WireError::decode(format!("unexpected field '{other}'"))),
            }
            Ok(())
        })?;
        Ok(GenerationResult {
            witness: required(witness, "witness")?,
            level: required(level, "level")?,
            nontrivial: required(nontrivial, "nontrivial")?,
            stale: required(stale, "stale")?,
            stats: required(stats, "stats")?,
        })
    }
}

fn required<T>(value: Option<T>, key: &str) -> Result<T, WireError> {
    value.ok_or_else(|| WireError::decode(format!("missing field '{key}'")))
}

/// Decodes a `/generate` response body (the v1 envelope around a
/// [`GenerationResult`]'s fields) straight from its wire text, bypassing the
/// [`Json`] tree. Accepts exactly what [`generation_to_body`] produces,
/// fields in any order; missing or unsupported `"v"` is a typed error;
/// malformed input errors, never panics.
pub fn generation_from_body(text: &str) -> Result<GenerationResult, WireError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut version = None;
    let (mut witness, mut level, mut nontrivial, mut stale, mut stats) =
        (None, None, None, None, None);
    p.fields(|p, key| {
        match key {
            "v" => version = Some(p.version_value()?),
            "witness" => witness = Some(p.witness_value()?),
            "level" => level = Some(level_from_str(p.raw_str()?)?),
            "nontrivial" => nontrivial = Some(p.bool_value()?),
            "stale" => stale = Some(p.bool_value()?),
            "stats" => stats = Some(p.generation_stats_value()?),
            other => return Err(WireError::decode(format!("unexpected field '{other}'"))),
        }
        Ok(())
    })?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(WireError::new(p.pos, "trailing characters after value"));
    }
    required(version, "v")?;
    Ok(GenerationResult {
        witness: required(witness, "witness")?,
        level: required(level, "level")?,
        nontrivial: required(nontrivial, "nontrivial")?,
        stale: required(stale, "stale")?,
        stats: required(stats, "stats")?,
    })
}

/// Decodes a `/generate` (or `/subscribe`) request body
/// (`{"v": 1, "nodes": [..]}`) straight into its node list, bypassing the
/// [`Json`] tree. Strict: exactly the envelope plus the one field, plain
/// non-negative integers, nothing trailing. The serving layer uses this as
/// the fast path and falls back to the tree decoder on any error so
/// malformed bodies keep their established 400 messages.
pub fn nodes_from_body(text: &str) -> Result<Vec<usize>, WireError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut version = None;
    let mut nodes = None;
    p.fields(|p, key| {
        match key {
            "v" => version = Some(p.version_value()?),
            "nodes" => nodes = Some(p.usize_array()?),
            other => return Err(WireError::decode(format!("unexpected field '{other}'"))),
        }
        Ok(())
    })?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(WireError::new(p.pos, "trailing characters after value"));
    }
    required(version, "v")?;
    required(nodes, "nodes")
}

pub(crate) fn push_usize_array(out: &mut String, xs: impl IntoIterator<Item = usize>) {
    out.push('[');
    for (i, x) in xs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_u64(out, x as u64);
    }
    out.push(']');
}

/// Serializes a `/generate` response body straight to its wire text: the v1
/// envelope wrapping a [`GenerationResult`]'s fields — byte-identical to
/// `versioned(generation_to_json(r)).encode()` (pinned by a test) without
/// building the tree.
pub fn generation_to_body(r: &GenerationResult) -> String {
    let mut out = String::with_capacity(
        200 + 8 * (r.witness.subgraph.nodes().len() + 2 * r.witness.test_nodes.len())
            + 12 * r.witness.subgraph.edges().len(),
    );
    out.push_str("{\"v\":");
    push_u64(&mut out, WIRE_VERSION);
    out.push(',');
    push_generation_fields(&mut out, r);
    out.push('}');
    out
}

/// Writes a [`GenerationResult`]'s fields (`"witness":..,"level":..,..`,
/// no surrounding braces, no envelope) — byte-identical to the interior of
/// `generation_to_json(r).encode()`. Shared by [`generation_to_body`] and the
/// subscription frame encoders, which nest the *unversioned* result object.
pub(crate) fn push_generation_fields(out: &mut String, r: &GenerationResult) {
    let w = &r.witness;
    out.push_str("\"witness\":{\"nodes\":");
    push_usize_array(out, w.subgraph.nodes().iter().copied());
    out.push_str(",\"edges\":[");
    for (i, (u, v)) in w.subgraph.edges().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        push_u64(out, u as u64);
        out.push(',');
        push_u64(out, v as u64);
        out.push(']');
    }
    out.push_str("],\"test_nodes\":");
    push_usize_array(out, w.test_nodes.iter().copied());
    out.push_str(",\"labels\":");
    push_usize_array(out, w.labels.iter().copied());
    out.push_str("},\"level\":\"");
    out.push_str(level_to_str(r.level));
    out.push_str("\",\"nontrivial\":");
    out.push_str(if r.nontrivial { "true" } else { "false" });
    out.push_str(",\"stale\":");
    out.push_str(if r.stale { "true" } else { "false" });
    out.push_str(",\"stats\":{\"inference_calls\":");
    push_u64(out, r.stats.inference_calls as u64);
    out.push_str(",\"disturbances_verified\":");
    push_u64(out, r.stats.disturbances_verified as u64);
    out.push_str(",\"expand_rounds\":");
    push_u64(out, r.stats.expand_rounds as u64);
    out.push_str(",\"elapsed_us\":");
    push_u64(out, r.stats.elapsed.as_micros() as u64);
    out.push('}');
}

// ---------------------------------------------------------------------------
// Domain encodings
// ---------------------------------------------------------------------------

fn edges_to_json(edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Json {
    Json::Arr(
        edges
            .into_iter()
            .map(|(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
            .collect(),
    )
}

fn edges_from_json(value: &Json) -> Result<Vec<(NodeId, NodeId)>, WireError> {
    value
        .as_arr()?
        .iter()
        .map(|pair| {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err(WireError::decode("edge must be a [u, v] pair"));
            }
            Ok((pair[0].as_usize()?, pair[1].as_usize()?))
        })
        .collect()
}

fn usizes_from_json(value: &Json) -> Result<Vec<usize>, WireError> {
    value.as_arr()?.iter().map(|x| x.as_usize()).collect()
}

/// Stable string form of a [`WitnessLevel`].
pub fn level_to_str(level: WitnessLevel) -> &'static str {
    match level {
        WitnessLevel::NotAWitness => "not_a_witness",
        WitnessLevel::Factual => "factual",
        WitnessLevel::Counterfactual => "counterfactual",
        WitnessLevel::Robust => "robust",
    }
}

/// Parses the string form of a [`WitnessLevel`].
pub fn level_from_str(s: &str) -> Result<WitnessLevel, WireError> {
    match s {
        "not_a_witness" => Ok(WitnessLevel::NotAWitness),
        "factual" => Ok(WitnessLevel::Factual),
        "counterfactual" => Ok(WitnessLevel::Counterfactual),
        "robust" => Ok(WitnessLevel::Robust),
        other => Err(WireError::decode(format!(
            "unknown witness level '{other}'"
        ))),
    }
}

/// Encodes a [`Witness`]: explicit node and edge sets plus the test-node /
/// label pairing.
pub fn witness_to_json(w: &Witness) -> Json {
    Json::obj([
        ("nodes", Json::nums(w.subgraph.nodes().iter().copied())),
        ("edges", edges_to_json(w.subgraph.edges().iter())),
        ("test_nodes", Json::nums(w.test_nodes.iter().copied())),
        ("labels", Json::nums(w.labels.iter().copied())),
    ])
}

/// Decodes a [`Witness`].
pub fn witness_from_json(value: &Json) -> Result<Witness, WireError> {
    witness_from_parts(
        usizes_from_json(value.field("nodes")?)?,
        edges_from_json(value.field("edges")?)?,
        usizes_from_json(value.field("test_nodes")?)?,
        usizes_from_json(value.field("labels")?)?,
    )
}

/// Shared assembly + validation behind both witness decoders (tree and
/// direct), so they accept and reject exactly the same payloads.
fn witness_from_parts(
    nodes: Vec<usize>,
    edges: Vec<(usize, usize)>,
    test_nodes: Vec<usize>,
    labels: Vec<usize>,
) -> Result<Witness, WireError> {
    if test_nodes.len() != labels.len() {
        return Err(WireError::decode(
            "test_nodes and labels must have equal length",
        ));
    }
    if edges.iter().any(|&(u, v)| u == v) {
        return Err(WireError::decode("self-loop edge in witness"));
    }
    let subgraph = EdgeSubgraph::from_nodes_and_edges(nodes, edges);
    Ok(Witness::new(subgraph, test_nodes, labels))
}

/// Encodes a [`Disturbance`] as its flipped pairs.
pub fn disturbance_to_json(d: &Disturbance) -> Json {
    Json::obj([("flips", edges_to_json(d.pairs().iter()))])
}

/// Decodes a [`Disturbance`], rejecting self-loop flips.
pub fn disturbance_from_json(value: &Json) -> Result<Disturbance, WireError> {
    let flips = edges_from_json(value.field("flips")?)?;
    if flips.iter().any(|&(u, v)| u == v) {
        return Err(WireError::decode("self-loop flip in disturbance"));
    }
    Ok(Disturbance::from_pairs(flips))
}

/// Encodes [`EngineStats`].
pub fn engine_stats_to_json(s: &EngineStats) -> Json {
    Json::obj([
        ("queries", Json::num(s.queries as u64)),
        ("warm_hits", Json::num(s.warm_hits as u64)),
        ("sessions_run", Json::num(s.sessions_run as u64)),
        ("flips_applied", Json::num(s.flips_applied as u64)),
        ("repairs_skipped", Json::num(s.repairs_skipped as u64)),
        ("repairs_reverified", Json::num(s.repairs_reverified as u64)),
        ("repairs_searched", Json::num(s.repairs_searched as u64)),
        (
            "repairs_regenerated",
            Json::num(s.repairs_regenerated as u64),
        ),
        ("repairs_degraded", Json::num(s.repairs_degraded as u64)),
        ("degraded_serves", Json::num(s.degraded_serves as u64)),
        ("budget_aborts", Json::num(s.budget_aborts as u64)),
    ])
}

/// Decodes [`EngineStats`].
pub fn engine_stats_from_json(value: &Json) -> Result<EngineStats, WireError> {
    Ok(EngineStats {
        queries: value.field("queries")?.as_usize()?,
        warm_hits: value.field("warm_hits")?.as_usize()?,
        sessions_run: value.field("sessions_run")?.as_usize()?,
        flips_applied: value.field("flips_applied")?.as_usize()?,
        repairs_skipped: value.field("repairs_skipped")?.as_usize()?,
        repairs_reverified: value.field("repairs_reverified")?.as_usize()?,
        repairs_searched: value.field("repairs_searched")?.as_usize()?,
        repairs_regenerated: value.field("repairs_regenerated")?.as_usize()?,
        repairs_degraded: value.field("repairs_degraded")?.as_usize()?,
        degraded_serves: value.field("degraded_serves")?.as_usize()?,
        budget_aborts: value.field("budget_aborts")?.as_usize()?,
    })
}

/// Encodes an [`EngineSnapshot`].
pub fn snapshot_to_json(s: &EngineSnapshot) -> Json {
    Json::obj([
        ("stats", engine_stats_to_json(&s.stats)),
        ("stored", Json::num(s.stored as u64)),
        ("epoch", Json::num(s.epoch)),
        ("feature_epoch", Json::num(s.feature_epoch)),
        ("hood_hits", Json::num(s.hood_hits as u64)),
        ("hood_misses", Json::num(s.hood_misses as u64)),
        ("workers", Json::num(s.workers as u64)),
    ])
}

/// Encodes a sharded engine's routing ledger ([`ShardStats`]).
pub fn shard_stats_to_json(s: &ShardStats) -> Json {
    Json::obj([
        ("queries", Json::num(s.queries as u64)),
        ("routed", Json::num(s.routed as u64)),
        ("halo_escapes", Json::num(s.halo_escapes as u64)),
        (
            "routed_per_shard",
            Json::Arr(
                s.routed_per_shard
                    .iter()
                    .map(|&c| Json::num(c as u64))
                    .collect(),
            ),
        ),
        ("disturbs", Json::num(s.disturbs as u64)),
        (
            "fanout_applications",
            Json::num(s.fanout_applications as u64),
        ),
    ])
}

/// Decodes a [`ShardStats`] routing ledger.
pub fn shard_stats_from_json(value: &Json) -> Result<ShardStats, WireError> {
    let per_shard = value.field("routed_per_shard")?;
    let Json::Arr(items) = per_shard else {
        return Err(WireError::decode("routed_per_shard must be an array"));
    };
    Ok(ShardStats {
        queries: value.field("queries")?.as_usize()?,
        routed: value.field("routed")?.as_usize()?,
        halo_escapes: value.field("halo_escapes")?.as_usize()?,
        routed_per_shard: items
            .iter()
            .map(|v| v.as_usize())
            .collect::<Result<Vec<usize>, WireError>>()?,
        disturbs: value.field("disturbs")?.as_usize()?,
        fanout_applications: value.field("fanout_applications")?.as_usize()?,
    })
}

/// Decodes an [`EngineSnapshot`].
pub fn snapshot_from_json(value: &Json) -> Result<EngineSnapshot, WireError> {
    Ok(EngineSnapshot {
        stats: engine_stats_from_json(value.field("stats")?)?,
        stored: value.field("stored")?.as_usize()?,
        epoch: value.field("epoch")?.as_u64()?,
        feature_epoch: value.field("feature_epoch")?.as_u64()?,
        hood_hits: value.field("hood_hits")?.as_usize()?,
        hood_misses: value.field("hood_misses")?.as_usize()?,
        workers: value.field("workers")?.as_usize()?,
    })
}

fn generation_stats_to_json(s: &GenerationStats) -> Json {
    Json::obj([
        ("inference_calls", Json::num(s.inference_calls as u64)),
        (
            "disturbances_verified",
            Json::num(s.disturbances_verified as u64),
        ),
        ("expand_rounds", Json::num(s.expand_rounds as u64)),
        ("elapsed_us", Json::num(s.elapsed.as_micros() as u64)),
    ])
}

fn generation_stats_from_json(value: &Json) -> Result<GenerationStats, WireError> {
    Ok(GenerationStats {
        inference_calls: value.field("inference_calls")?.as_usize()?,
        disturbances_verified: value.field("disturbances_verified")?.as_usize()?,
        expand_rounds: value.field("expand_rounds")?.as_usize()?,
        elapsed: Duration::from_micros(value.field("elapsed_us")?.as_u64()?),
    })
}

/// Encodes a [`DisturbReport`].
pub fn disturb_report_to_json(r: &DisturbReport) -> Json {
    Json::obj([
        ("epoch", Json::num(r.epoch)),
        ("flips_applied", Json::num(r.flips_applied as u64)),
        ("footprint_size", Json::num(r.footprint_size as u64)),
        ("untouched", Json::num(r.untouched as u64)),
        ("reverified", Json::num(r.reverified as u64)),
        ("repaired", Json::num(r.repaired as u64)),
        ("regenerated", Json::num(r.regenerated as u64)),
        ("degraded", Json::num(r.degraded as u64)),
        ("stats", generation_stats_to_json(&r.stats)),
    ])
}

/// Decodes a [`DisturbReport`].
pub fn disturb_report_from_json(value: &Json) -> Result<DisturbReport, WireError> {
    Ok(DisturbReport {
        epoch: value.field("epoch")?.as_u64()?,
        flips_applied: value.field("flips_applied")?.as_usize()?,
        footprint_size: value.field("footprint_size")?.as_usize()?,
        untouched: value.field("untouched")?.as_usize()?,
        reverified: value.field("reverified")?.as_usize()?,
        repaired: value.field("repaired")?.as_usize()?,
        regenerated: value.field("regenerated")?.as_usize()?,
        degraded: value.field("degraded")?.as_usize()?,
        stats: generation_stats_from_json(value.field("stats")?)?,
        // Per-entry repair outcomes never cross the wire as part of the
        // report — the serving layer strips them into subscription frames.
        entries: Vec::new(),
    })
}

/// Encodes a [`GenerationResult`].
pub fn generation_to_json(r: &GenerationResult) -> Json {
    Json::obj([
        ("witness", witness_to_json(&r.witness)),
        ("level", Json::Str(level_to_str(r.level).to_string())),
        ("nontrivial", Json::Bool(r.nontrivial)),
        ("stale", Json::Bool(r.stale)),
        ("stats", generation_stats_to_json(&r.stats)),
    ])
}

/// Decodes a [`GenerationResult`].
pub fn generation_from_json(value: &Json) -> Result<GenerationResult, WireError> {
    Ok(GenerationResult {
        witness: witness_from_json(value.field("witness")?)?,
        level: level_from_str(value.field("level")?.as_str()?)?,
        nontrivial: value.field("nontrivial")?.as_bool()?,
        stale: value.field("stale")?.as_bool()?,
        stats: generation_stats_from_json(value.field("stats")?)?,
    })
}

// ---------------------------------------------------------------------------
// Structured errors
// ---------------------------------------------------------------------------

/// The uniform machine-readable error every non-2xx response carries:
/// `{"v": 1, "error": {"code": .., "detail": .., "retryable": ..}}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorBody {
    /// Stable machine-readable class (`"bad_request"`, `"overloaded"`, ...).
    pub code: String,
    /// Human-readable description; clients match substrings, never parse.
    pub detail: String,
    /// Whether retrying the identical request may succeed.
    pub retryable: bool,
}

/// Encodes a structured error body (v1 envelope included).
pub fn error_to_body(code: &str, detail: &str, retryable: bool) -> String {
    versioned(Json::obj([(
        "error",
        Json::obj([
            ("code", Json::Str(code.to_string())),
            ("detail", Json::Str(detail.to_string())),
            ("retryable", Json::Bool(retryable)),
        ]),
    )]))
    .encode()
}

/// Decodes a structured error body. Tolerates extra top-level fields
/// (`queue_depth`, ...) but requires the envelope and all three error fields.
pub fn error_from_json(value: &Json) -> Result<ErrorBody, WireError> {
    check_version(value)?;
    let e = value.field("error")?;
    Ok(ErrorBody {
        code: e.field("code")?.as_str()?.to_string(),
        detail: e.field("detail")?.as_str()?.to_string(),
        retryable: e.field("retryable")?.as_bool()?,
    })
}

// ---------------------------------------------------------------------------
// Subscription frames
// ---------------------------------------------------------------------------

/// Decodes a [`RepairOutcome`] wire tag (inverse of [`RepairOutcome::as_str`]).
pub fn outcome_from_str(s: &str) -> Result<RepairOutcome, WireError> {
    match s {
        "reverified" => Ok(RepairOutcome::Reverified),
        "repaired" => Ok(RepairOutcome::Repaired),
        "regenerated" => Ok(RepairOutcome::Regenerated),
        "degraded" => Ok(RepairOutcome::Degraded),
        other => Err(WireError::decode(format!(
            "unknown repair outcome '{other}'"
        ))),
    }
}

/// One pushed subscription update: the repair the engine performed for a
/// subscribed entry when a disturbance's footprint touched it.
#[derive(Clone, Debug)]
pub struct WitnessUpdate {
    /// Subscription id the update belongs to (server-assigned, per-listener).
    pub subscription: u64,
    /// Disturbance sequence number that triggered the repair.
    pub disturbance: u64,
    /// How the engine resolved the entry.
    pub outcome: RepairOutcome,
    /// Graph epoch after the disturbance landed.
    pub epoch: u64,
    /// The repaired entry — bit-exact with a fresh `/generate` at `epoch`
    /// (for `degraded` outcomes: the stale-tagged result a failed heal serves).
    pub result: GenerationResult,
}

/// A decoded subscription stream frame (one NDJSON line).
#[derive(Clone, Debug)]
pub enum Frame {
    /// Acknowledgement: the subscription is registered and streaming starts.
    Subscribed {
        subscription: u64,
        epoch: u64,
        nodes: Vec<NodeId>,
        result: GenerationResult,
    },
    /// A repair landed for the subscribed entry.
    WitnessUpdate(WitnessUpdate),
}

/// Serializes the `subscribed` acknowledgement frame (no trailing newline;
/// the stream layer adds the NDJSON delimiter).
pub fn subscribed_frame_to_body(
    subscription: u64,
    epoch: u64,
    nodes: &[NodeId],
    result: &GenerationResult,
) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"v\":");
    push_u64(&mut out, WIRE_VERSION);
    out.push_str(",\"frame\":\"subscribed\",\"subscription\":");
    push_u64(&mut out, subscription);
    out.push_str(",\"epoch\":");
    push_u64(&mut out, epoch);
    out.push_str(",\"nodes\":");
    push_usize_array(&mut out, nodes.iter().copied());
    out.push_str(",\"result\":{");
    push_generation_fields(&mut out, result);
    out.push_str("}}");
    out
}

/// Serializes a `witness_update` frame (no trailing newline; the stream
/// layer adds the NDJSON delimiter). The nested result object is unversioned
/// — the envelope sits on the frame.
pub fn update_frame_to_body(u: &WitnessUpdate) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"v\":");
    push_u64(&mut out, WIRE_VERSION);
    out.push_str(",\"frame\":\"witness_update\",\"subscription\":");
    push_u64(&mut out, u.subscription);
    out.push_str(",\"disturbance\":");
    push_u64(&mut out, u.disturbance);
    out.push_str(",\"outcome\":\"");
    out.push_str(u.outcome.as_str());
    out.push_str("\",\"epoch\":");
    push_u64(&mut out, u.epoch);
    out.push_str(",\"result\":{");
    push_generation_fields(&mut out, &u.result);
    out.push_str("}}");
    out
}

/// Decodes one subscription stream frame straight from its NDJSON line,
/// bypassing the [`Json`] tree. Strict like the other direct decoders:
/// required fields per frame kind, no unknown fields, nothing trailing.
pub fn frame_from_body(text: &str) -> Result<Frame, WireError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let mut version = None;
    let mut kind: Option<bool> = None; // false = subscribed, true = update
    let (mut subscription, mut disturbance, mut epoch) = (None, None, None);
    let mut outcome = None;
    let mut nodes = None;
    let mut result = None;
    p.fields(|p, key| {
        match key {
            "v" => version = Some(p.version_value()?),
            "frame" => {
                kind = Some(match p.raw_str()? {
                    "subscribed" => false,
                    "witness_update" => true,
                    other => {
                        return Err(WireError::decode(format!("unknown frame kind '{other}'")))
                    }
                })
            }
            "subscription" => subscription = Some(p.usize_value()? as u64),
            "disturbance" => disturbance = Some(p.usize_value()? as u64),
            "outcome" => outcome = Some(outcome_from_str(p.raw_str()?)?),
            "epoch" => epoch = Some(p.usize_value()? as u64),
            "nodes" => nodes = Some(p.usize_array()?),
            "result" => result = Some(p.generation_value()?),
            other => return Err(WireError::decode(format!("unexpected field '{other}'"))),
        }
        Ok(())
    })?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(WireError::new(p.pos, "trailing characters after value"));
    }
    required(version, "v")?;
    match required(kind, "frame")? {
        false => Ok(Frame::Subscribed {
            subscription: required(subscription, "subscription")?,
            epoch: required(epoch, "epoch")?,
            nodes: required(nodes, "nodes")?,
            result: required(result, "result")?,
        }),
        true => Ok(Frame::WitnessUpdate(WitnessUpdate {
            subscription: required(subscription, "subscription")?,
            disturbance: required(disturbance, "disturbance")?,
            outcome: required(outcome, "outcome")?,
            epoch: required(epoch, "epoch")?,
            result: required(result, "result")?,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_value_round_trips() {
        let cases = [
            "null",
            "true",
            "false",
            "0",
            "-17",
            "3.5",
            "\"hello\"",
            "[]",
            "[1,2,3]",
            "{}",
            "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"x\"}}",
        ];
        for case in cases {
            let v = Json::parse(case).unwrap_or_else(|e| panic!("{case}: {e}"));
            let re = Json::parse(&v.encode()).unwrap();
            assert_eq!(v, re, "{case}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Json::Str("a\"b\\c\nd\tü 🦀".to_string());
        let enc = v.encode();
        assert_eq!(Json::parse(&enc).unwrap(), v);
        assert_eq!(
            Json::parse("\"\\u0041\\u00fc\"").unwrap(),
            Json::Str("Aü".to_string())
        );
    }

    #[test]
    fn malformed_json_is_rejected_not_panicked() {
        let bad = [
            "",
            "{",
            "}",
            "[1,",
            "[1 2]",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "\"unterminated",
            "tru",
            "1.2.3",
            "nan",
            "01x",
            "[1]trailing",
            "\"bad \\q escape\"",
            "\"trunc \\u00",
            "1e999",
        ];
        for case in bad {
            assert!(Json::parse(case).is_err(), "should reject: {case}");
        }
        // hostile nesting is bounded, not a stack overflow
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn number_helpers_enforce_integrality() {
        assert_eq!(Json::Num(5.0).as_u64().unwrap(), 5);
        assert!(Json::Num(5.5).as_u64().is_err());
        assert!(Json::Num(-1.0).as_u64().is_err());
        assert!(Json::Str("5".into()).as_u64().is_err());
    }

    fn sample_generation() -> GenerationResult {
        let mut subgraph = EdgeSubgraph::from_edges(vec![(0, 1), (1, 2), (2, 7)]);
        subgraph.add_node(9);
        GenerationResult {
            witness: Witness::new(subgraph, vec![0, 7], vec![3, 1]),
            level: WitnessLevel::Robust,
            nontrivial: true,
            stale: false,
            stats: GenerationStats {
                inference_calls: 12,
                disturbances_verified: 4,
                expand_rounds: 2,
                elapsed: Duration::from_micros(357),
            },
        }
    }

    #[test]
    fn direct_generation_codec_matches_the_tree_codec() {
        let result = sample_generation();
        // Same bytes out: the direct body is the v1 envelope around the
        // (unversioned) tree encoding.
        let body = generation_to_body(&result);
        assert_eq!(body, versioned(generation_to_json(&result)).encode());
        // ...and both decoders accept them, agreeing with each other: the
        // direct parse re-encodes to the identical body.
        let direct = generation_from_body(&body).expect("direct parse");
        assert_eq!(generation_to_body(&direct), body);
        let tree_value = Json::parse(&body).expect("tree parse");
        check_version(&tree_value).expect("envelope");
        let tree = generation_from_json(&tree_value).expect("decode");
        assert_eq!(generation_to_body(&tree), body);
        // Field order independence (a forward-compat guarantee the tree
        // decoder already had).
        let shuffled = "{\"stale\":false,\"level\":\"robust\",\"nontrivial\":true,\
                        \"stats\":{\"elapsed_us\":357,\"expand_rounds\":2,\
                        \"disturbances_verified\":4,\"inference_calls\":12},\
                        \"witness\":{\"labels\":[3,1],\"test_nodes\":[0,7],\
                        \"edges\":[[0,1],[1,2],[2,7]],\"nodes\":[0,1,2,7,9]},\"v\":1}";
        let reordered = generation_from_body(shuffled).expect("reordered parse");
        assert_eq!(generation_to_body(&reordered), body);
    }

    #[test]
    fn version_negotiation_is_strict() {
        let body = generation_to_body(&sample_generation());
        // A future version is rejected with a typed message, both paths.
        let future = body.replacen("{\"v\":1,", "{\"v\":2,", 1);
        let err = generation_from_body(&future).expect_err("future version");
        assert!(err.to_string().contains("unsupported wire version 2"));
        let err = check_version(&Json::parse(&future).unwrap()).expect_err("tree path");
        assert!(err.to_string().contains("unsupported wire version 2"));
        // A missing version is a missing-field error, not a silent default.
        let bare = body.replacen("{\"v\":1,", "{", 1);
        let err = generation_from_body(&bare).expect_err("missing version");
        assert!(err.to_string().contains("'v'"), "{err}");
        // check_version tolerates extra fields but not absence.
        assert!(check_version(&Json::obj([("x", Json::num(3u64))])).is_err());
        assert!(check_version(&versioned(Json::obj([("x", Json::num(3u64))]))).is_ok());
    }

    #[test]
    fn error_body_round_trips() {
        let body = error_to_body("overloaded", "queue full: overloaded", true);
        let decoded = error_from_json(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(
            decoded,
            ErrorBody {
                code: "overloaded".to_string(),
                detail: "queue full: overloaded".to_string(),
                retryable: true,
            }
        );
        // Escaping survives the trip.
        let body = error_to_body("bad_request", "unexpected field '\"x\"'", false);
        let decoded = error_from_json(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(decoded.detail, "unexpected field '\"x\"'");
        // The envelope is mandatory on error bodies too.
        assert!(error_from_json(
            &Json::parse("{\"error\":{\"code\":\"x\",\"detail\":\"y\",\"retryable\":false}}")
                .unwrap()
        )
        .is_err());
    }

    #[test]
    fn subscription_frames_round_trip() {
        let result = sample_generation();
        let ack = subscribed_frame_to_body(4, 17, &[0, 7], &result);
        match frame_from_body(&ack).expect("ack decodes") {
            Frame::Subscribed {
                subscription,
                epoch,
                nodes,
                result: got,
            } => {
                assert_eq!((subscription, epoch), (4, 17));
                assert_eq!(nodes, vec![0, 7]);
                assert_eq!(generation_to_body(&got), generation_to_body(&result));
            }
            other => panic!("wrong frame: {other:?}"),
        }
        for outcome in [
            RepairOutcome::Reverified,
            RepairOutcome::Repaired,
            RepairOutcome::Regenerated,
            RepairOutcome::Degraded,
        ] {
            let update = WitnessUpdate {
                subscription: 9,
                disturbance: 3,
                outcome,
                epoch: 21,
                result: result.clone(),
            };
            let line = update_frame_to_body(&update);
            match frame_from_body(&line).expect("update decodes") {
                Frame::WitnessUpdate(got) => {
                    assert_eq!(got.subscription, 9);
                    assert_eq!(got.disturbance, 3);
                    assert_eq!(got.outcome, outcome);
                    assert_eq!(got.epoch, 21);
                    assert_eq!(generation_to_body(&got.result), generation_to_body(&result));
                }
                other => panic!("wrong frame: {other:?}"),
            }
            // Frames are versioned; the nested result object is not.
            assert!(line.starts_with("{\"v\":1,\"frame\":\"witness_update\""));
            assert!(line.contains(",\"result\":{\"witness\":"));
        }
        // Malformed frames error, never panic.
        let line = update_frame_to_body(&WitnessUpdate {
            subscription: 1,
            disturbance: 1,
            outcome: RepairOutcome::Repaired,
            epoch: 2,
            result,
        });
        for cut in 0..line.len() {
            assert!(frame_from_body(&line[..cut]).is_err(), "cut at {cut}");
        }
        assert!(frame_from_body(&line.replacen("witness_update", "mystery", 1)).is_err());
        assert!(frame_from_body(&line.replacen("\"repaired\"", "\"melted\"", 1)).is_err());
        assert!(frame_from_body(&line.replacen("{\"v\":1,", "{", 1)).is_err());
    }

    #[test]
    fn direct_generation_parser_rejects_malformed_bodies() {
        let body = generation_to_body(&sample_generation());
        // Every truncation errors instead of panicking.
        for cut in 0..body.len() {
            assert!(generation_from_body(&body[..cut]).is_err(), "cut at {cut}");
        }
        // Dropping any field is a decode error naming the field.
        for field in ["v", "witness", "level", "nontrivial", "stale", "stats"] {
            let dropped = {
                let json = Json::parse(&body).unwrap();
                let Json::Obj(fields) = json else { panic!() };
                Json::Obj(fields.into_iter().filter(|(k, _)| k != field).collect())
            };
            let err = generation_from_body(&dropped.encode()).expect_err("must reject");
            assert!(err.to_string().contains(field), "{field}: {err}");
        }
        // The shared validators still fire through the direct path.
        let self_loop = body.replace("[[0,1]", "[[1,1]");
        assert!(generation_from_body(&self_loop)
            .expect_err("self-loop")
            .to_string()
            .contains("self-loop"));
        assert!(
            generation_from_body(&body.replace("\"labels\":[3,1]", "\"labels\":[3]"))
                .expect_err("length mismatch")
                .to_string()
                .contains("equal length")
        );
        assert!(generation_from_body("").is_err());
        assert!(generation_from_body("{}").is_err());
        assert!(generation_from_body(&format!("{body} trailing")).is_err());
    }
}
