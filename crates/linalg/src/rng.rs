//! A small, deterministic, dependency-free PRNG.
//!
//! The workspace builds without network access, so it cannot depend on the
//! `rand` crate. This module provides the narrow slice of its API the
//! reproduction needs — seeded construction, uniform ranges, Bernoulli draws,
//! Fisher–Yates shuffling — backed by xoshiro256**, seeded via SplitMix64.
//! Everything downstream (weight init, graph generators, disturbance sampling)
//! is a deterministic function of the seed, which the paper's "fixed,
//! deterministic classifier" assumption and the pinned-seed tests rely on.

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Seeds the generator from a single `u64` (SplitMix64 expansion), like
    /// `rand`'s `SeedableRng::seed_from_u64`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Rng { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a range; supports `usize`/`u64` half-open ranges
    /// and `f64` half-open / inclusive ranges, mirroring `rand::Rng::gen_range`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end - self.start) as u64;
        // Lemire-style rejection-free enough for span << 2^64; use modulo with
        // rejection of the biased tail to stay exactly uniform.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = rng.next_u64();
            if x < zone {
                return self.start + (x % span) as usize;
            }
        }
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = self.end - self.start;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = rng.next_u64();
            if x < zone {
                return self.start + x % span;
            }
        }
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + rng.gen_f64() * (hi - lo)
    }
}

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;
    /// In-place Fisher–Yates shuffle.
    fn shuffle(&mut self, rng: &mut Rng);
    /// Uniformly random element, `None` on an empty slice.
    fn choose(&self, rng: &mut Rng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let g = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn usize_range_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(11);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "p=0.25 hits {hits}/2000");
    }

    #[test]
    fn shuffle_and_choose_are_deterministic_permutations() {
        let mut rng = Rng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        let mut rng2 = Rng::seed_from_u64(3);
        let mut v2: Vec<usize> = (0..10).collect();
        v2.shuffle(&mut rng2);
        assert_eq!(v, v2);
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
