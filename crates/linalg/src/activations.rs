//! Elementwise non-linearities and their derivatives.
//!
//! Used by the GNN substrate's forward and backward passes. Only the
//! activations actually needed by the reproduced models are provided.

use crate::Matrix;

/// Supported activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no non-linearity); used for output layers producing logits.
    Identity,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Leaky ReLU with slope 0.2 on the negative side (GAT's attention uses this).
    LeakyRelu,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::LeakyRelu => {
                if x > 0.0 {
                    x
                } else {
                    0.2 * x
                }
            }
        }
    }

    /// Derivative of the activation with respect to its input, evaluated at `x`.
    #[inline]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = Activation::Sigmoid.apply(x);
                s * (1.0 - s)
            }
            Activation::LeakyRelu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.2
                }
            }
        }
    }

    /// Applies the activation elementwise to a matrix, returning a new matrix.
    pub fn apply_matrix(self, m: &Matrix) -> Matrix {
        m.map(|x| self.apply(x))
    }

    /// Elementwise derivative over a matrix of pre-activation values.
    pub fn derivative_matrix(self, pre: &Matrix) -> Matrix {
        pre.map(|x| self.derivative(x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn relu_and_leaky() {
        assert_eq!(Activation::Relu.apply(-2.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert!(approx_eq(Activation::LeakyRelu.apply(-1.0), -0.2, 1e-12));
        assert_eq!(Activation::LeakyRelu.derivative(-1.0), 0.2);
        assert_eq!(Activation::Relu.derivative(2.0), 1.0);
        assert_eq!(Activation::Relu.derivative(-2.0), 0.0);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        let s = Activation::Sigmoid;
        assert!(approx_eq(s.apply(0.0), 0.5, 1e-12));
        assert!(s.apply(10.0) > 0.999);
        assert!(s.apply(-10.0) < 0.001);
        // derivative peaks at 0 with value 0.25
        assert!(approx_eq(s.derivative(0.0), 0.25, 1e-12));
    }

    #[test]
    fn tanh_derivative_matches_finite_difference() {
        let t = Activation::Tanh;
        let x = 0.3;
        let h = 1e-6;
        let fd = (t.apply(x + h) - t.apply(x - h)) / (2.0 * h);
        assert!(approx_eq(t.derivative(x), fd, 1e-6));
    }

    #[test]
    fn identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0]]);
        assert_eq!(Activation::Identity.apply_matrix(&m), m);
        assert_eq!(
            Activation::Identity.derivative_matrix(&m),
            Matrix::from_rows(&[vec![1.0, 1.0]])
        );
    }

    #[test]
    fn matrix_application() {
        let m = Matrix::from_rows(&[vec![1.0, -2.0], vec![-0.5, 0.0]]);
        let r = Activation::Relu.apply_matrix(&m);
        assert_eq!(r, Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0]]));
    }
}
