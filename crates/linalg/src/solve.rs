//! Linear system solving and matrix inversion.
//!
//! Exact personalized PageRank needs `(I - alpha * D^{-1} A)^{-1}`, either as a
//! full inverse (to obtain the PageRank matrix `Pi`) or applied to a single
//! right-hand side (to obtain one propagation column). Graphs in the test and
//! experiment suites are small enough for dense Gaussian elimination with
//! partial pivoting; large graphs use the iterative solvers in `rcw-pagerank`.

use crate::Matrix;

/// Error returned when a linear system cannot be solved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is not square.
    NotSquare,
    /// The right-hand side has the wrong length / row count.
    DimensionMismatch,
    /// The matrix is singular (a pivot below tolerance was encountered).
    Singular,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotSquare => write!(f, "coefficient matrix is not square"),
            SolveError::DimensionMismatch => write!(f, "right-hand side dimension mismatch"),
            SolveError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for SolveError {}

const PIVOT_TOL: f64 = 1e-12;

/// Solves `A x = b` for a single right-hand side using Gaussian elimination
/// with partial pivoting.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    let rhs = Matrix::from_vec(b.len(), 1, b.to_vec());
    let x = solve_multi(a, &rhs)?;
    Ok(x.col(0))
}

/// Solves `A X = B` for a matrix right-hand side.
pub fn solve_multi(a: &Matrix, b: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::NotSquare);
    }
    if b.rows() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let m = b.cols();

    // Augmented working copies.
    let mut lhs = a.clone();
    let mut rhs = b.clone();

    for col in 0..n {
        // Partial pivot: find the row with the largest absolute value in `col`.
        let mut pivot_row = col;
        let mut pivot_val = lhs.get(col, col).abs();
        for r in (col + 1)..n {
            let v = lhs.get(r, col).abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < PIVOT_TOL {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            swap_rows(&mut lhs, col, pivot_row);
            swap_rows(&mut rhs, col, pivot_row);
        }

        let pivot = lhs.get(col, col);
        // Eliminate below.
        for r in (col + 1)..n {
            let factor = lhs.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = lhs.get(r, c) - factor * lhs.get(col, c);
                lhs.set(r, c, v);
            }
            for c in 0..m {
                let v = rhs.get(r, c) - factor * rhs.get(col, c);
                rhs.set(r, c, v);
            }
        }
    }

    // Back substitution.
    let mut x = Matrix::zeros(n, m);
    for col in (0..n).rev() {
        for c in 0..m {
            let mut acc = rhs.get(col, c);
            for k in (col + 1)..n {
                acc -= lhs.get(col, k) * x.get(k, c);
            }
            x.set(col, c, acc / lhs.get(col, col));
        }
    }
    Ok(x)
}

/// Computes the inverse of a square matrix.
pub fn invert(a: &Matrix) -> Result<Matrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::NotSquare);
    }
    solve_multi(a, &Matrix::identity(n))
}

fn swap_rows(m: &mut Matrix, a: usize, b: usize) {
    if a == b {
        return;
    }
    let cols = m.cols();
    for c in 0..cols {
        let va = m.get(a, c);
        let vb = m.get(b, c);
        m.set(a, c, vb);
        m.set(b, c, va);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{approx_eq, approx_eq_slice};

    #[test]
    fn solve_2x2() {
        // x + 2y = 5 ; 3x + 4y = 11  =>  x=1, y=2
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = solve(&a, &[5.0, 11.0]).unwrap();
        assert!(approx_eq_slice(&x, &[1.0, 2.0], 1e-10));
    }

    #[test]
    fn solve_requires_pivoting() {
        // leading zero forces a row swap
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(approx_eq_slice(&x, &[3.0, 2.0], 1e-12));
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SolveError::NotSquare));
    }

    #[test]
    fn rhs_mismatch_is_rejected() {
        let a = Matrix::identity(3);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SolveError::DimensionMismatch));
    }

    #[test]
    fn invert_roundtrip() {
        let a = Matrix::from_rows(&[vec![4.0, 7.0], vec![2.0, 6.0]]);
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        let i = Matrix::identity(2);
        for r in 0..2 {
            for c in 0..2 {
                assert!(approx_eq(prod.get(r, c), i.get(r, c), 1e-10));
            }
        }
    }

    #[test]
    fn solve_multi_matches_columnwise_solve() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        let x = solve_multi(&a, &b).unwrap();
        let x0 = solve(&a, &[1.0, 0.0]).unwrap();
        let x1 = solve(&a, &[0.0, 1.0]).unwrap();
        assert!(approx_eq_slice(&x.col(0), &x0, 1e-12));
        assert!(approx_eq_slice(&x.col(1), &x1, 1e-12));
    }

    #[test]
    fn pagerank_style_system_is_solvable() {
        // (I - alpha * P) with P row-stochastic is strictly diagonally dominant
        // for alpha < 1 and must always be solvable.
        let p = Matrix::from_rows(&[
            vec![0.0, 0.5, 0.5],
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.5, 0.0],
        ]);
        let alpha = 0.85;
        let a = Matrix::identity(3).sub(&p.scale(alpha));
        let x = solve(&a, &[1.0, 0.0, 0.0]);
        assert!(x.is_ok());
    }
}
