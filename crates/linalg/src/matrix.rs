//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is the workhorse container for node feature matrices, GNN
//! weights, logits, propagation matrices, and adjacency matrices in dense
//! form. It intentionally keeps a small, explicit API: every operation either
//! returns a new matrix or mutates `self` in place, and all dimension
//! mismatches panic with a descriptive message (they are programming errors in
//! this workspace, not recoverable conditions).

/// A dense row-major matrix of `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has inconsistent length"
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = Matrix::zeros(n, n);
        for (i, v) in values.iter().enumerate() {
            m.set(i, i, *v);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Writes the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Sets an entire row from a slice.
    ///
    /// # Panics
    /// Panics if `values.len() != cols`.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row: wrong length");
        self.row_mut(r).copy_from_slice(values);
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{} dimension mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: sequential access of `other`'s rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Vector-matrix product `v^T * self` (returns a row vector).
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "vecmat: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                out[j] += vi * a;
            }
        }
        out
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (j, &v) in self.row(r).iter().enumerate() {
                out[j] += v;
            }
        }
        out
    }

    /// Index of the maximum value in row `r` (ties resolved to the smallest index).
    pub fn row_argmax(&self, r: usize) -> usize {
        crate::vector::argmax(self.row(r))
    }

    /// Applies a row-wise softmax, returning a new matrix where each row sums to 1.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            crate::vector::softmax_inplace(row);
        }
        out
    }

    /// Extracts the sub-matrix made of the given rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.set_row(i, self.row(r));
        }
        out
    }

    /// Horizontally concatenates `self` with `other`.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Returns `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.add_at(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 6.5);
    }

    #[test]
    fn identity_and_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let d = Matrix::diag(&[2.0, 3.0]);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_panics_on_mismatch() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(approx_eq_slice(&a.matvec(&[1.0, 1.0]), &[3.0, 7.0], 1e-12));
        assert!(approx_eq_slice(&a.vecmat(&[1.0, 1.0]), &[4.0, 6.0], 1e-12));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[vec![3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[vec![2.0, 4.0]]));
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!(approx_eq_slice(&a.row_sums(), &[-1.0, 7.0], 1e-12));
        assert!(approx_eq_slice(&a.col_sums(), &[4.0, 2.0], 1e-12));
        assert!((a.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert_eq!(s.row_argmax(0), 2);
    }

    #[test]
    fn select_rows_and_hconcat() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel, Matrix::from_rows(&[vec![3.0], vec![1.0]]));
        let b = Matrix::from_rows(&[vec![9.0], vec![8.0], vec![7.0]]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.row(1), &[2.0, 8.0]);
    }

    #[test]
    fn map_and_finite() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let m = a.map(|x| x.max(0.0));
        assert_eq!(m, Matrix::from_rows(&[vec![1.0, 0.0]]));
        assert!(a.is_finite());
        let bad = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(!bad.is_finite());
    }
}
