//! Row-major dense `f64` matrix.
//!
//! [`Matrix`] is the workhorse container for node feature matrices, GNN
//! weights, logits, propagation matrices, and adjacency matrices in dense
//! form. It intentionally keeps a small, explicit API: every operation either
//! returns a new matrix or mutates `self` in place, and all dimension
//! mismatches panic with a descriptive message (they are programming errors in
//! this workspace, not recoverable conditions).

/// A dense row-major matrix of `f64` values.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has inconsistent length"
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(values: &[f64]) -> Self {
        let n = values.len();
        let mut m = Matrix::zeros(n, n);
        for (i, v) in values.iter().enumerate() {
            m.set(i, i, *v);
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable access to the underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reads the element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Writes the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Sets an entire row from a slice.
    ///
    /// # Panics
    /// Panics if `values.len() != cols`.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert_eq!(values.len(), self.cols, "set_row: wrong length");
        self.row_mut(r).copy_from_slice(values);
    }

    /// Matrix product `self * other`.
    ///
    /// Pre-transposes `other` once and runs the blocked kernel
    /// ([`Matrix::matmul_pret`]), so both operands stream with unit stride.
    /// Bit-identical to [`Matrix::matmul_reference`]: every output element is
    /// the same ascending-`k` accumulation chain with the same zero skips.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{} dimension mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        self.matmul_pret(&other.transpose())
    }

    /// Matrix product `self * other_t^T` where the right operand is given
    /// **already transposed** (`other_t` has shape `cols_out x inner`). Callers
    /// that reuse the same right operand many times (layer weights) transpose
    /// it once and skip the per-call transpose that [`Matrix::matmul`] pays.
    pub fn matmul_pret(&self, other_t: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other_t.rows());
        matmul_pret_rows(&self.data, self.cols, other_t, &mut out.data, None, false);
        out
    }

    /// Scalar reference implementation of [`Matrix::matmul`] (the i-k-j loop
    /// the blocked kernel replaced). Retained for the kernel-equivalence
    /// sweeps and the `bench_kernels` baseline; do not use on hot paths.
    pub fn matmul_reference(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} * {}x{} dimension mismatch",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order: sequential access of `other`'s rows.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (j, &b) in orow.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// Resizes `self` to `rows x cols` and zero-fills it, reusing the existing
    /// allocation when capacity allows. The scratch-buffer counterpart of
    /// [`Matrix::zeros`].
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Vector-matrix product `v^T * self` (returns a row vector).
    pub fn vecmat(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "vecmat: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (j, &a) in self.row(i).iter().enumerate() {
                out[j] += vi * a;
            }
        }
        out
    }

    /// Returns the transpose of `self`.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Elementwise sum `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise difference `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard: shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign: shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling by a scalar.
    pub fn scale_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Returns `self * s`.
    pub fn scale(&self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_assign(s);
        out
    }

    /// Applies a function to every element, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Applies a function to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
    }

    /// Per-row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|r| self.row(r).iter().sum()).collect()
    }

    /// Per-column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (j, &v) in self.row(r).iter().enumerate() {
                out[j] += v;
            }
        }
        out
    }

    /// Index of the maximum value in row `r` (ties resolved to the smallest index).
    pub fn row_argmax(&self, r: usize) -> usize {
        crate::vector::argmax(self.row(r))
    }

    /// Applies a row-wise softmax, returning a new matrix where each row sums to 1.
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..self.rows {
            let row = out.row_mut(r);
            crate::vector::softmax_inplace(row);
        }
        out
    }

    /// Extracts the sub-matrix made of the given rows (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            out.set_row(i, self.row(r));
        }
        out
    }

    /// Horizontally concatenates `self` with `other`.
    pub fn hconcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hconcat: row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Returns `true` if all elements are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Blocked matrix-multiply kernel over a pre-transposed right operand.
///
/// Computes `out[i, :] (+)= a[i, :] * bt^T` for each selected row `i`, where
/// `a` is a row-major `n x a_cols` buffer, `bt` is the **transposed** right
/// operand (`out_cols x a_cols`, row-major) and `out` is a row-major
/// `n x out_cols` buffer. `rows: None` processes every row; `Some(rows)`
/// touches only the listed rows and leaves the rest of `out` untouched. With
/// `accumulate == false` selected output rows are overwritten; with `true` the
/// finished dot products are added onto the existing contents.
///
/// Output columns are computed in 4-wide register tiles and selected rows in
/// blocks of 4, giving 16 independent ascending-`k` accumulation chains that
/// hide FMA latency. Each `(row, col)` chain starts from `0.0` and adds in
/// ascending `k`, so results are bit-identical to
/// [`Matrix::matmul_reference`]: for finite `bt` the reference's `a == 0.0`
/// skip is a no-op (adding `±0.0` never changes a `+0.0`-initialized
/// accumulator), which lets the blocked path run branch-free; non-finite
/// weights fall back to a single-row kernel that performs the skip literally.
///
/// # Panics
/// Panics if `bt.cols() != a_cols` or a selected row is out of bounds for
/// `a`/`out`.
pub fn matmul_pret_rows(
    a: &[f64],
    a_cols: usize,
    bt: &Matrix,
    out: &mut [f64],
    rows: Option<&[usize]>,
    accumulate: bool,
) {
    #[inline(always)]
    fn lanes<const T: usize>(
        arow: &[f64],
        bt: &[f64],
        k: usize,
        orow: &mut [f64],
        accumulate: bool,
    ) {
        let mut acc = [0.0f64; T];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            for t in 0..T {
                acc[t] += av * bt[t * k + kk];
            }
        }
        if accumulate {
            for t in 0..T {
                orow[t] += acc[t];
            }
        } else {
            orow[..T].copy_from_slice(&acc);
        }
    }

    /// Four output rows at once against one `T`-column tile of `bt`.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn lanes4x<const T: usize>(
        a: &[f64],
        k: usize,
        r: [usize; 4],
        btj: &[f64],
        out: &mut [f64],
        out_cols: usize,
        j: usize,
        accumulate: bool,
    ) {
        let a0 = &a[r[0] * k..(r[0] + 1) * k];
        let a1 = &a[r[1] * k..(r[1] + 1) * k];
        let a2 = &a[r[2] * k..(r[2] + 1) * k];
        let a3 = &a[r[3] * k..(r[3] + 1) * k];
        let mut acc = [[0.0f64; T]; 4];
        for kk in 0..k {
            let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
            for t in 0..T {
                let w = btj[t * k + kk];
                for (accr, avr) in acc.iter_mut().zip(av) {
                    accr[t] += avr * w;
                }
            }
        }
        for (rr, accr) in acc.iter().enumerate() {
            let o = &mut out[r[rr] * out_cols + j..];
            if accumulate {
                for t in 0..T {
                    o[t] += accr[t];
                }
            } else {
                o[..T].copy_from_slice(accr);
            }
        }
    }

    let k = a_cols;
    let out_cols = bt.rows;
    assert_eq!(
        bt.cols, k,
        "matmul_pret_rows: transposed operand has inner dim {} but a has {}",
        bt.cols, k
    );
    if out_cols == 0 {
        return;
    }
    let btd: &[f64] = &bt.data;
    let n_rows = out.len() / out_cols;
    let one_row = |out: &mut [f64], i: usize| {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * out_cols..(i + 1) * out_cols];
        let mut j = 0;
        while j + 4 <= out_cols {
            lanes::<4>(arow, &btd[j * k..], k, &mut orow[j..], accumulate);
            j += 4;
        }
        match out_cols - j {
            3 => lanes::<3>(arow, &btd[j * k..], k, &mut orow[j..], accumulate),
            2 => lanes::<2>(arow, &btd[j * k..], k, &mut orow[j..], accumulate),
            1 => lanes::<1>(arow, &btd[j * k..], k, &mut orow[j..], accumulate),
            _ => {}
        }
    };
    let finite = btd.iter().all(|x| x.is_finite());
    if !finite {
        // Rare path: a non-finite weight makes the `a == 0.0` skip observable
        // (`0.0 * inf` is NaN), so honor it literally, one row at a time.
        match rows {
            None => (0..n_rows).for_each(|i| one_row(out, i)),
            Some(rows) => rows.iter().for_each(|&i| one_row(out, i)),
        }
        return;
    }
    let four_rows = |out: &mut [f64], r: [usize; 4]| {
        let mut j = 0;
        while j + 4 <= out_cols {
            lanes4x::<4>(a, k, r, &btd[j * k..], out, out_cols, j, accumulate);
            j += 4;
        }
        match out_cols - j {
            3 => lanes4x::<3>(a, k, r, &btd[j * k..], out, out_cols, j, accumulate),
            2 => lanes4x::<2>(a, k, r, &btd[j * k..], out, out_cols, j, accumulate),
            1 => lanes4x::<1>(a, k, r, &btd[j * k..], out, out_cols, j, accumulate),
            _ => {}
        }
    };
    match rows {
        None => {
            let mut i = 0;
            while i + 4 <= n_rows {
                four_rows(out, [i, i + 1, i + 2, i + 3]);
                i += 4;
            }
            (i..n_rows).for_each(|i| one_row(out, i));
        }
        Some(rows) => {
            let mut chunks = rows.chunks_exact(4);
            for c in &mut chunks {
                four_rows(out, [c[0], c[1], c[2], c[3]]);
            }
            chunks.remainder().iter().for_each(|&i| one_row(out, i));
        }
    }
}

/// A weight matrix repacked for the blocked matmul kernel: output columns are
/// grouped into tiles of four, and within each tile the four columns' values
/// for one inner index `k` sit contiguously (`[k][j0..j0+4]` order). One tile
/// row is then a single vector load, so the kernel's inner loop is a
/// broadcast-FMA over unit-stride memory instead of four strided scalar
/// loads. The last tile may be 1–3 columns wide and is stored at its own
/// width.
///
/// Whether every packed value is finite is recorded at pack time; the kernel
/// uses it to pick between the branch-free fast path and the literal
/// `a == 0.0`-skip path (see [`matmul_packed_rows`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PackedWeights {
    /// Inner dimension (rows of the source matrix).
    k: usize,
    /// Output columns (columns of the source matrix).
    cols: usize,
    /// Tile-packed values: full tiles of `4 * k`, then one `(cols % 4) * k`
    /// remainder tile.
    data: Vec<f64>,
    finite: bool,
}

impl PackedWeights {
    /// Packs a `k x cols` weight matrix (the right operand of `x * w`).
    pub fn pack(w: &Matrix) -> PackedWeights {
        let (k, cols) = (w.rows, w.cols);
        let mut data = Vec::with_capacity(k * cols);
        let mut j0 = 0;
        while j0 < cols {
            let width = (cols - j0).min(4);
            for kk in 0..k {
                data.extend_from_slice(&w.data[kk * cols + j0..kk * cols + j0 + width]);
            }
            j0 += width;
        }
        let finite = data.iter().all(|x| x.is_finite());
        PackedWeights {
            k,
            cols,
            data,
            finite,
        }
    }

    /// Inner dimension (rows of the source matrix).
    pub fn inner(&self) -> usize {
        self.k
    }

    /// Output columns of the product.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reconstructs the source `k x cols` matrix (tests, serialization).
    pub fn unpack(&self) -> Matrix {
        let mut w = Matrix::zeros(self.k, self.cols);
        let mut j0 = 0;
        let mut base = 0;
        while j0 < self.cols {
            let width = (self.cols - j0).min(4);
            for kk in 0..self.k {
                let src = &self.data[base + kk * width..base + (kk + 1) * width];
                w.data[kk * self.cols + j0..kk * self.cols + j0 + width].copy_from_slice(src);
            }
            base += self.k * width;
            j0 += width;
        }
        w
    }
}

/// Blocked matrix-multiply kernel over a [`PackedWeights`] right operand:
/// `out[i, :] (+)= a[i, :] * w` for each selected row. Same contract as
/// [`matmul_pret_rows`] (row subsets, accumulate, bit-identical results to
/// [`Matrix::matmul_reference`]) but the tile-interleaved layout turns each
/// inner step into one unit-stride vector load plus broadcast FMAs, and the
/// finiteness of the weights was already decided at pack time.
///
/// # Panics
/// Panics if `pw.inner() != a_cols` or a selected row is out of bounds for
/// `a`/`out`.
pub fn matmul_packed_rows(
    a: &[f64],
    a_cols: usize,
    pw: &PackedWeights,
    out: &mut [f64],
    rows: Option<&[usize]>,
    accumulate: bool,
) {
    /// One row against one `T`-wide tile, branch-free.
    #[inline(always)]
    fn tile1<const T: usize>(arow: &[f64], tile: &[f64], orow: &mut [f64], accumulate: bool) {
        let mut acc = [0.0f64; T];
        for (kk, &av) in arow.iter().enumerate() {
            let w = &tile[kk * T..kk * T + T];
            for t in 0..T {
                acc[t] += av * w[t];
            }
        }
        if accumulate {
            for t in 0..T {
                orow[t] += acc[t];
            }
        } else {
            orow[..T].copy_from_slice(&acc);
        }
    }

    /// One row against one `T`-wide tile with the literal `a == 0.0` skip
    /// (non-finite weights make the skip observable).
    #[inline(always)]
    fn tile1_skip<const T: usize>(arow: &[f64], tile: &[f64], orow: &mut [f64], accumulate: bool) {
        let mut acc = [0.0f64; T];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let w = &tile[kk * T..kk * T + T];
            for t in 0..T {
                acc[t] += av * w[t];
            }
        }
        if accumulate {
            for t in 0..T {
                orow[t] += acc[t];
            }
        } else {
            orow[..T].copy_from_slice(&acc);
        }
    }

    /// Four rows against one `T`-wide tile: 4 broadcast lanes x `T` columns
    /// of independent ascending-`k` chains.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn tile4<const T: usize>(
        a: &[f64],
        k: usize,
        r: [usize; 4],
        tile: &[f64],
        out: &mut [f64],
        out_cols: usize,
        j: usize,
        accumulate: bool,
    ) {
        let a0 = &a[r[0] * k..(r[0] + 1) * k];
        let a1 = &a[r[1] * k..(r[1] + 1) * k];
        let a2 = &a[r[2] * k..(r[2] + 1) * k];
        let a3 = &a[r[3] * k..(r[3] + 1) * k];
        let mut acc = [[0.0f64; T]; 4];
        for kk in 0..k {
            let w = &tile[kk * T..kk * T + T];
            let av = [a0[kk], a1[kk], a2[kk], a3[kk]];
            for (accr, avr) in acc.iter_mut().zip(av) {
                for t in 0..T {
                    accr[t] += avr * w[t];
                }
            }
        }
        for (rr, accr) in acc.iter().enumerate() {
            let o = &mut out[r[rr] * out_cols + j..];
            if accumulate {
                for t in 0..T {
                    o[t] += accr[t];
                }
            } else {
                o[..T].copy_from_slice(accr);
            }
        }
    }

    let k = a_cols;
    let out_cols = pw.cols;
    assert_eq!(
        pw.k, k,
        "matmul_packed_rows: packed operand has inner dim {} but a has {}",
        pw.k, k
    );
    if out_cols == 0 {
        return;
    }
    let pd: &[f64] = &pw.data;
    let n_rows = out.len() / out_cols;
    let one_row = |out: &mut [f64], i: usize| {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * out_cols..(i + 1) * out_cols];
        let mut j = 0;
        while j + 4 <= out_cols {
            let tile = &pd[j * k..(j + 4) * k];
            if pw.finite {
                tile1::<4>(arow, tile, &mut orow[j..], accumulate);
            } else {
                tile1_skip::<4>(arow, tile, &mut orow[j..], accumulate);
            }
            j += 4;
        }
        let tile = &pd[j * k..];
        match (out_cols - j, pw.finite) {
            (3, true) => tile1::<3>(arow, tile, &mut orow[j..], accumulate),
            (3, false) => tile1_skip::<3>(arow, tile, &mut orow[j..], accumulate),
            (2, true) => tile1::<2>(arow, tile, &mut orow[j..], accumulate),
            (2, false) => tile1_skip::<2>(arow, tile, &mut orow[j..], accumulate),
            (1, true) => tile1::<1>(arow, tile, &mut orow[j..], accumulate),
            (1, false) => tile1_skip::<1>(arow, tile, &mut orow[j..], accumulate),
            _ => {}
        }
    };
    if !pw.finite {
        // Rare path: a non-finite weight makes the `a == 0.0` skip observable
        // (`0.0 * inf` is NaN), so honor it literally, one row at a time.
        match rows {
            None => (0..n_rows).for_each(|i| one_row(out, i)),
            Some(rows) => rows.iter().for_each(|&i| one_row(out, i)),
        }
        return;
    }
    let four_rows = |out: &mut [f64], r: [usize; 4]| {
        let mut j = 0;
        while j + 4 <= out_cols {
            tile4::<4>(
                a,
                k,
                r,
                &pd[j * k..(j + 4) * k],
                out,
                out_cols,
                j,
                accumulate,
            );
            j += 4;
        }
        let tile = &pd[j * k..];
        match out_cols - j {
            3 => tile4::<3>(a, k, r, tile, out, out_cols, j, accumulate),
            2 => tile4::<2>(a, k, r, tile, out, out_cols, j, accumulate),
            1 => tile4::<1>(a, k, r, tile, out, out_cols, j, accumulate),
            _ => {}
        }
    };
    match rows {
        None => {
            let mut i = 0;
            while i + 4 <= n_rows {
                four_rows(out, [i, i + 1, i + 2, i + 3]);
                i += 4;
            }
            (i..n_rows).for_each(|i| one_row(out, i));
        }
        Some(rows) => {
            let mut chunks = rows.chunks_exact(4);
            for c in &mut chunks {
                four_rows(out, [c[0], c[1], c[2], c[3]]);
            }
            chunks.remainder().iter().for_each(|&i| one_row(out, i));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq_slice;

    #[test]
    fn construction_and_access() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        m.add_at(1, 2, 1.5);
        assert_eq!(m.get(1, 2), 6.5);
    }

    #[test]
    fn identity_and_diag() {
        let i = Matrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
        let d = Matrix::diag(&[2.0, 3.0]);
        assert_eq!(d.get(1, 1), 3.0);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn from_rows_matches_from_vec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_panics_on_mismatch() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i), a);
    }

    /// Random matrix with injected exact zeros, deterministic in the seed.
    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = crate::rng::Rng::seed_from_u64(seed);
        let data = (0..rows * cols)
            .map(|_| {
                if rng.gen_bool(0.15) {
                    0.0
                } else {
                    rng.gen_range(-2.0..=2.0)
                }
            })
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    fn assert_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
        for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: element {i} differs ({x} vs {y})"
            );
        }
    }

    #[test]
    fn blocked_matmul_is_bit_exact_vs_reference() {
        // Sweep shapes around the tile boundaries (out_cols % 4 in 0..4),
        // including degenerate inner dims and single rows/cols.
        for seed in 0u64..4 {
            for &(n, k, m) in &[
                (1, 1, 1),
                (2, 3, 4),
                (5, 4, 3),
                (7, 6, 2),
                (8, 5, 5),
                (3, 2, 9),
                (11, 7, 13),
                (6, 1, 8),
            ] {
                let a = random_matrix(n, k, seed ^ ((n as u64) << 8) ^ m as u64);
                let b = random_matrix(k, m, seed.wrapping_mul(31) ^ 0xB17);
                assert_bits_eq(
                    &a.matmul(&b),
                    &a.matmul_reference(&b),
                    &format!("matmul {n}x{k}*{k}x{m} seed {seed}"),
                );
                assert_bits_eq(
                    &a.matmul_pret(&b.transpose()),
                    &a.matmul_reference(&b),
                    &format!("matmul_pret {n}x{k}*{k}x{m} seed {seed}"),
                );
                let pw = PackedWeights::pack(&b);
                assert_bits_eq(&pw.unpack(), &b, "pack/unpack roundtrip");
                let mut out = vec![0.0; n * m];
                matmul_packed_rows(a.data(), k, &pw, &mut out, None, false);
                assert_bits_eq(
                    &Matrix::from_vec(n, m, out),
                    &a.matmul_reference(&b),
                    &format!("matmul_packed {n}x{k}*{k}x{m} seed {seed}"),
                );
            }
        }
    }

    #[test]
    fn packed_matmul_respects_row_subset_accumulate_and_skip() {
        let a = random_matrix(9, 5, 77);
        let b = random_matrix(5, 6, 78);
        let pw = PackedWeights::pack(&b);
        let full = a.matmul_reference(&b);
        let rows = [1usize, 4, 7];
        let mut out = vec![-3.5; 9 * 6];
        matmul_packed_rows(a.data(), 5, &pw, &mut out, Some(&rows), false);
        for r in 0..9 {
            for c in 0..6 {
                let got = out[r * 6 + c];
                if rows.contains(&r) {
                    assert_eq!(got.to_bits(), full.get(r, c).to_bits());
                } else {
                    assert_eq!(got, -3.5, "row {r} should be untouched");
                }
            }
        }
        let mut acc = vec![1.0; 9 * 6];
        matmul_packed_rows(a.data(), 5, &pw, &mut acc, None, true);
        for r in 0..9 {
            for c in 0..6 {
                assert_eq!(acc[r * 6 + c].to_bits(), (1.0 + full.get(r, c)).to_bits());
            }
        }
        // Non-finite weights: the a == 0.0 skip must be honored literally —
        // a zero activation against an infinite weight stays skipped (no NaN).
        let mut binf = b.clone();
        binf.set(2, 3, f64::INFINITY);
        let mut a0 = a.clone();
        a0.set(0, 2, 0.0);
        let pinf = PackedWeights::pack(&binf);
        let mut out = vec![0.0; 9 * 6];
        matmul_packed_rows(a0.data(), 5, &pinf, &mut out, None, false);
        assert_bits_eq(
            &Matrix::from_vec(9, 6, out),
            &a0.matmul_reference(&binf),
            "packed skip semantics under non-finite weights",
        );
    }

    #[test]
    fn matmul_pret_rows_respects_row_subset_and_accumulate() {
        let a = random_matrix(9, 5, 77);
        let b = random_matrix(5, 6, 78);
        let bt = b.transpose();
        let full = a.matmul_reference(&b);
        // subset: only listed rows written, others untouched
        let rows = [1usize, 4, 7];
        let mut out = vec![-3.5; 9 * 6];
        matmul_pret_rows(a.data(), 5, &bt, &mut out, Some(&rows), false);
        for r in 0..9 {
            for c in 0..6 {
                let got = out[r * 6 + c];
                if rows.contains(&r) {
                    assert_eq!(got.to_bits(), full.get(r, c).to_bits());
                } else {
                    assert_eq!(got, -3.5, "row {r} should be untouched");
                }
            }
        }
        // accumulate: adds finished dot products onto existing contents
        let mut acc = vec![1.0; 9 * 6];
        matmul_pret_rows(a.data(), 5, &bt, &mut acc, None, true);
        for r in 0..9 {
            for c in 0..6 {
                assert_eq!(acc[r * 6 + c].to_bits(), (1.0 + full.get(r, c)).to_bits());
            }
        }
    }

    #[test]
    fn reset_reuses_and_zeroes() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        m.reset(3, 1);
        assert_eq!(m, Matrix::zeros(3, 1));
        m.reset(1, 2);
        assert_eq!(m.shape(), (1, 2));
        assert_eq!(m.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn matvec_and_vecmat() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert!(approx_eq_slice(&a.matvec(&[1.0, 1.0]), &[3.0, 7.0], 1e-12));
        assert!(approx_eq_slice(&a.vecmat(&[1.0, 1.0]), &[4.0, 6.0], 1e-12));
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[vec![4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[vec![2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[vec![3.0, 10.0]]));
        assert_eq!(a.scale(2.0), Matrix::from_rows(&[vec![2.0, 4.0]]));
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.max_abs(), 4.0);
        assert!(approx_eq_slice(&a.row_sums(), &[-1.0, 7.0], 1e-12));
        assert!(approx_eq_slice(&a.col_sums(), &[4.0, 2.0], 1e-12));
        assert!((a.frobenius_norm() - (30.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![0.0, 0.0, 0.0]]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f64 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert_eq!(s.row_argmax(0), 2);
    }

    #[test]
    fn select_rows_and_hconcat() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let sel = a.select_rows(&[2, 0]);
        assert_eq!(sel, Matrix::from_rows(&[vec![3.0], vec![1.0]]));
        let b = Matrix::from_rows(&[vec![9.0], vec![8.0], vec![7.0]]);
        let cat = a.hconcat(&b);
        assert_eq!(cat.row(1), &[2.0, 8.0]);
    }

    #[test]
    fn map_and_finite() {
        let a = Matrix::from_rows(&[vec![1.0, -1.0]]);
        let m = a.map(|x| x.max(0.0));
        assert_eq!(m, Matrix::from_rows(&[vec![1.0, 0.0]]));
        assert!(a.is_finite());
        let bad = Matrix::from_rows(&[vec![f64::NAN]]);
        assert!(!bad.is_finite());
    }
}
