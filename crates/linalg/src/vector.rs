//! Free functions over `&[f64]` vectors.
//!
//! These helpers are used both by the GNN substrate (softmax, argmax,
//! cross-entropy) and by the PageRank machinery (dot products, L1 residuals).

/// Dot product of two equally sized slices.
///
/// # Panics
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// L1 norm (sum of absolute values).
pub fn l1_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// L2 (Euclidean) norm.
pub fn l2_norm(a: &[f64]) -> f64 {
    a.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// L1 distance between two slices.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Index of the maximum element; ties resolve to the smallest index.
///
/// # Panics
/// Panics on an empty slice.
pub fn argmax(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > a[best] {
            best = i;
        }
    }
    best
}

/// Index of the minimum element; ties resolve to the smallest index.
pub fn argmin(a: &[f64]) -> usize {
    assert!(!a.is_empty(), "argmin of empty slice");
    let mut best = 0;
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v < a[best] {
            best = i;
        }
    }
    best
}

/// Numerically stable in-place softmax.
pub fn softmax_inplace(a: &mut [f64]) {
    if a.is_empty() {
        return;
    }
    let max = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for v in a.iter_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in a.iter_mut() {
            *v /= sum;
        }
    }
}

/// Numerically stable softmax returning a new vector.
pub fn softmax(a: &[f64]) -> Vec<f64> {
    let mut out = a.to_vec();
    softmax_inplace(&mut out);
    out
}

/// Log-sum-exp of a slice (stable).
pub fn log_sum_exp(a: &[f64]) -> f64 {
    let max = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return max;
    }
    max + a.iter().map(|v| (v - max).exp()).sum::<f64>().ln()
}

/// Cross-entropy loss of a logits vector against a target class.
///
/// Equivalent to `-log softmax(logits)[target]`, computed stably.
pub fn cross_entropy(logits: &[f64], target: usize) -> f64 {
    assert!(target < logits.len(), "cross_entropy: target out of range");
    log_sum_exp(logits) - logits[target]
}

/// Scales a slice in place so it sums to one (no-op if the sum is zero).
pub fn normalize_sum_inplace(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s.abs() > 0.0 {
        for v in a {
            *v /= s;
        }
    }
}

/// Elementwise `a + scale * b`, in place on `a`.
pub fn axpy(a: &mut [f64], scale: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += scale * y;
    }
}

/// Mean of a slice (0.0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation of a slice (0.0 for fewer than 2 elements).
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(l1_norm(&[-1.0, 2.0]), 3.0);
        assert!(approx_eq(l2_norm(&[3.0, 4.0]), 5.0, 1e-12));
        assert_eq!(l1_distance(&[1.0, 1.0], &[0.0, 3.0]), 3.0);
    }

    #[test]
    fn argmax_ties_resolve_to_first() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), 1);
        assert_eq!(argmin(&[2.0, 0.0, 0.0]), 1);
    }

    #[test]
    #[should_panic]
    fn argmax_empty_panics() {
        argmax(&[]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let s = softmax(&[1.0, 2.0, 3.0]);
        assert!(approx_eq(s.iter().sum::<f64>(), 1.0, 1e-12));
        assert!(s[2] > s[1] && s[1] > s[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let s = softmax(&[1000.0, 1000.0]);
        assert!(approx_eq(s[0], 0.5, 1e-12));
        assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = cross_entropy(&[5.0, 0.0], 0);
        let bad = cross_entropy(&[5.0, 0.0], 1);
        assert!(good < bad);
        assert!(good > 0.0);
    }

    #[test]
    fn log_sum_exp_matches_naive_for_small_values() {
        let naive = (1.0_f64.exp() + 2.0_f64.exp()).ln();
        assert!(approx_eq(log_sum_exp(&[1.0, 2.0]), naive, 1e-12));
    }

    #[test]
    fn normalize_and_axpy() {
        let mut a = vec![1.0, 3.0];
        normalize_sum_inplace(&mut a);
        assert!(approx_eq(a[0], 0.25, 1e-12));
        let mut b = vec![1.0, 1.0];
        axpy(&mut b, 2.0, &[1.0, 2.0]);
        assert_eq!(b, vec![3.0, 5.0]);
    }

    #[test]
    fn stats() {
        assert_eq!(mean(&[]), 0.0);
        assert!(approx_eq(mean(&[1.0, 3.0]), 2.0, 1e-12));
        assert!(approx_eq(std_dev(&[1.0, 3.0]), 1.0, 1e-12));
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}
