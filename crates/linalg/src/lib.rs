//! # rcw-linalg
//!
//! Dense linear-algebra substrate for the RoboGExp reproduction.
//!
//! The paper's algorithms only require moderate-size dense math: node feature
//! matrices (`|V| x F`), GNN weight matrices, logits (`|V| x |L|`), and
//! personalized-PageRank systems `(I - alpha * D^{-1} A) x = b`. Everything is
//! implemented over row-major `f64` storage with no external BLAS, keeping the
//! build self-contained and deterministic.
//!
//! Modules:
//! * [`matrix`] — the [`Matrix`] type with arithmetic, reductions, slicing.
//! * [`vector`] — free functions over `&[f64]` (dot, norms, softmax, argmax).
//! * [`activations`] — elementwise non-linearities and their derivatives.
//! * [`solve`] — Gaussian elimination, matrix inverse, and linear solves used
//!   for exact personalized PageRank.
//! * [`init`] — deterministic Xavier/Glorot and uniform initializers.
//! * [`rng`] — the workspace's seeded, dependency-free PRNG.

pub mod activations;
pub mod init;
pub mod matrix;
pub mod rng;
pub mod solve;
pub mod vector;

pub use activations::Activation;
pub use matrix::{matmul_packed_rows, matmul_pret_rows, Matrix, PackedWeights};
pub use rng::Rng;

/// Numerical tolerance used across the workspace for float comparisons.
pub const EPS: f64 = 1e-9;

/// Returns `true` when `a` and `b` are within `tol` of each other.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// Returns `true` when two slices are elementwise within `tol`.
pub fn approx_eq_slice(a: &[f64], b: &[f64], tol: f64) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| approx_eq(*x, *y, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_slice_checks_length() {
        assert!(!approx_eq_slice(&[1.0], &[1.0, 2.0], 1e-9));
        assert!(approx_eq_slice(&[1.0, 2.0], &[1.0, 2.0], 1e-9));
    }
}
