//! Deterministic weight initializers.
//!
//! All models in the reproduction must be *fixed and deterministic* (the paper
//! assumes a fixed, deterministic GNN `M`). Every initializer therefore takes
//! an explicit seed and uses a seeded PRNG.

use crate::rng::Rng;
use crate::Matrix;

/// Xavier/Glorot uniform initialization: entries drawn from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let bound = (6.0 / (rows + cols).max(1) as f64).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform initialization in `[lo, hi)`.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, seed: u64) -> Matrix {
    assert!(lo < hi, "uniform: lo must be < hi");
    let mut rng = Rng::seed_from_u64(seed);
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Matrix::from_vec(rows, cols, data)
}

/// Standard-normal initialization scaled by `std`.
pub fn normal(rows: usize, cols: usize, std: f64, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| {
            // Box-Muller transform: avoids depending on rand_distr.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_deterministic_per_seed() {
        let a = xavier_uniform(4, 3, 7);
        let b = xavier_uniform(4, 3, 7);
        let c = xavier_uniform(4, 3, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn xavier_respects_bound() {
        let m = xavier_uniform(10, 10, 1);
        let bound = (6.0 / 20.0_f64).sqrt();
        assert!(m.data().iter().all(|v| v.abs() <= bound + 1e-12));
    }

    #[test]
    fn uniform_respects_range() {
        let m = uniform(5, 5, -0.5, 0.5, 3);
        assert!(m.data().iter().all(|v| *v >= -0.5 && *v < 0.5));
    }

    #[test]
    #[should_panic(expected = "lo must be < hi")]
    fn uniform_rejects_bad_range() {
        uniform(1, 1, 1.0, 0.0, 0);
    }

    #[test]
    fn normal_has_reasonable_spread() {
        let m = normal(50, 50, 1.0, 11);
        let mean = m.sum() / (m.rows() * m.cols()) as f64;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!(m.is_finite());
    }
}
