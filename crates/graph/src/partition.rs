//! Edge-cut graph partitioning with k-hop border replication.
//!
//! `paraRoboGExp` (§VI) fragments `G` into `n` partitions through an edge-cut
//! partition; every worker owns one fragment, and for each border node the
//! k-hop neighborhood is duplicated into the fragment so that local inference
//! needs no communication. This module provides that "inference preserving
//! partition".

use crate::edge::Edge;
use crate::graph::{Graph, NodeId};
use crate::traversal::k_hop_neighborhood;
use std::collections::{BTreeSet, VecDeque};

/// One fragment of an edge-cut partition.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Fragment index.
    pub id: usize,
    /// Nodes owned by this fragment (each node is owned by exactly one fragment).
    pub owned: BTreeSet<NodeId>,
    /// Owned nodes plus replicated k-hop neighborhoods of border nodes.
    pub nodes: BTreeSet<NodeId>,
    /// Edges with both endpoints inside `nodes` (global node ids).
    pub edges: Vec<Edge>,
}

impl Fragment {
    /// Whether this fragment owns `v`.
    pub fn owns(&self, v: NodeId) -> bool {
        self.owned.contains(&v)
    }

    /// Whether `v` is visible to this fragment (owned or replicated).
    pub fn covers(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Candidate node pairs local to this fragment: all pairs of visible
    /// nodes where at least one endpoint is owned. These are the pairs whose
    /// disturbance the worker is responsible for exploring.
    pub fn candidate_pairs(&self) -> Vec<Edge> {
        let nodes: Vec<NodeId> = self.nodes.iter().copied().collect();
        let mut out = Vec::new();
        for (i, &u) in nodes.iter().enumerate() {
            for &v in nodes.iter().skip(i + 1) {
                if self.owns(u) || self.owns(v) {
                    out.push((u, v));
                }
            }
        }
        out
    }
}

/// An edge-cut partition of a graph.
#[derive(Clone, Debug)]
pub struct Partition {
    /// Owner fragment of every node.
    pub owner: Vec<usize>,
    /// The fragments.
    pub fragments: Vec<Fragment>,
}

impl Partition {
    /// Number of fragments.
    pub fn num_fragments(&self) -> usize {
        self.fragments.len()
    }

    /// Number of cut edges (endpoints owned by different fragments).
    pub fn cut_size(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .filter(|&(u, v)| self.owner[u] != self.owner[v])
            .count()
    }

    /// Replication factor: total visible nodes across fragments divided by |V|.
    pub fn replication_factor(&self, graph: &Graph) -> f64 {
        if graph.num_nodes() == 0 {
            return 1.0;
        }
        let total: usize = self.fragments.iter().map(|f| f.nodes.len()).sum();
        total as f64 / graph.num_nodes() as f64
    }

    /// Repairs the partition after a disturbance that flipped pairs incident
    /// to `touched`, instead of re-running the balanced BFS from scratch.
    /// Node ownership is preserved (small disturbances do not warrant
    /// re-balancing); only the border replication and edge lists of fragments
    /// whose visible region intersects the touched set are rebuilt. Returns
    /// the refreshed fragment ids, or `None` when the node set changed — the
    /// caller must rebuild the partition in that case.
    pub fn refresh_after_disturbance(
        &mut self,
        graph: &Graph,
        touched: &BTreeSet<NodeId>,
        hops: usize,
    ) -> Option<Vec<usize>> {
        if self.owner.len() != graph.num_nodes() {
            return None;
        }
        let affected: BTreeSet<usize> = self
            .fragments
            .iter()
            .filter(|f| touched.iter().any(|&v| f.covers(v)))
            .map(|f| f.id)
            .chain(
                touched
                    .iter()
                    .map(|&v| self.owner[v])
                    .filter(|&p| p < self.fragments.len()),
            )
            .collect();
        if affected.is_empty() {
            return Some(Vec::new());
        }
        // Rebuild replication for the affected fragments: reset to the owned
        // set, then re-replicate the k-hop neighborhoods of cut-edge
        // endpoints, exactly as the full build does.
        for &fid in &affected {
            let frag = &mut self.fragments[fid];
            frag.nodes = frag.owned.clone();
        }
        for (u, v) in graph.edges() {
            let (pu, pv) = (self.owner[u], self.owner[v]);
            if pu == pv {
                continue;
            }
            for &(node, part) in &[(u, pv), (v, pu)] {
                if part < self.fragments.len() && affected.contains(&part) {
                    let hood = k_hop_neighborhood(graph, node, hops);
                    self.fragments[part].nodes.extend(hood);
                }
            }
        }
        for &fid in &affected {
            let frag = &mut self.fragments[fid];
            frag.edges = graph
                .edges()
                .filter(|&(u, v)| frag.nodes.contains(&u) && frag.nodes.contains(&v))
                .collect();
        }
        Some(affected.into_iter().collect())
    }
}

/// Builds an edge-cut partition into `num_parts` fragments using balanced BFS
/// growth, then replicates the `hops`-hop neighborhood of every border node
/// into each fragment that owns one of its neighbors.
///
/// # Panics
/// Panics if `num_parts == 0`.
pub fn edge_cut_partition(graph: &Graph, num_parts: usize, hops: usize) -> Partition {
    assert!(num_parts > 0, "edge_cut_partition: num_parts must be > 0");
    let n = graph.num_nodes();
    let parts = num_parts.min(n.max(1));
    let mut owner = vec![usize::MAX; n];

    // Balanced multi-source BFS: seed one queue per part with evenly spaced
    // nodes, then grow the smallest part first.
    let mut queues: Vec<VecDeque<NodeId>> = vec![VecDeque::new(); parts];
    let mut sizes = vec![0usize; parts];
    if n > 0 {
        for (p, queue) in queues.iter_mut().enumerate() {
            let seed = p * n / parts;
            queue.push_back(seed);
        }
        let mut assigned = 0;
        let mut next_unassigned = 0;
        while assigned < n {
            // pick the smallest part that still has frontier work
            let mut made_progress = false;
            let order: Vec<usize> = {
                let mut idx: Vec<usize> = (0..parts).collect();
                idx.sort_by_key(|&p| sizes[p]);
                idx
            };
            for p in order {
                while let Some(u) = queues[p].pop_front() {
                    if owner[u] != usize::MAX {
                        continue;
                    }
                    owner[u] = p;
                    sizes[p] += 1;
                    assigned += 1;
                    for v in graph.neighbors(u) {
                        if owner[v] == usize::MAX {
                            queues[p].push_back(v);
                        }
                    }
                    made_progress = true;
                    break;
                }
                if made_progress {
                    break;
                }
            }
            if !made_progress {
                // disconnected remainder: seed the smallest part with the next
                // unassigned node
                while next_unassigned < n && owner[next_unassigned] != usize::MAX {
                    next_unassigned += 1;
                }
                if next_unassigned >= n {
                    break;
                }
                let smallest = (0..parts).min_by_key(|&p| sizes[p]).unwrap_or(0);
                queues[smallest].push_back(next_unassigned);
            }
        }
    }

    // Build fragments: owned sets, then replicate border k-hop neighborhoods.
    let mut fragments: Vec<Fragment> = (0..parts)
        .map(|id| Fragment {
            id,
            owned: BTreeSet::new(),
            nodes: BTreeSet::new(),
            edges: Vec::new(),
        })
        .collect();
    for (v, &p) in owner.iter().enumerate() {
        if p != usize::MAX {
            fragments[p].owned.insert(v);
            fragments[p].nodes.insert(v);
        }
    }
    // border nodes: endpoints of cut edges
    for (u, v) in graph.edges() {
        let (pu, pv) = (owner[u], owner[v]);
        if pu != pv {
            // replicate the k-hop neighborhood of each endpoint into the other's fragment
            for &(node, part) in &[(u, pv), (v, pu)] {
                let hood = k_hop_neighborhood(graph, node, hops);
                fragments[part].nodes.extend(hood);
            }
        }
    }
    // fragment edge lists
    for frag in &mut fragments {
        frag.edges = graph
            .edges()
            .filter(|&(u, v)| frag.nodes.contains(&u) && frag.nodes.contains(&v))
            .collect();
    }

    Partition { owner, fragments }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::barabasi_albert;

    #[test]
    fn every_node_owned_exactly_once() {
        let g = barabasi_albert(80, 2, 4);
        let p = edge_cut_partition(&g, 4, 1);
        assert_eq!(p.num_fragments(), 4);
        let mut seen = vec![0; g.num_nodes()];
        for f in &p.fragments {
            for &v in &f.owned {
                seen[v] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each node owned exactly once");
    }

    #[test]
    fn fragments_are_reasonably_balanced() {
        let g = barabasi_albert(100, 2, 1);
        let p = edge_cut_partition(&g, 4, 1);
        for f in &p.fragments {
            assert!(
                f.owned.len() >= 10,
                "fragment {} too small: {}",
                f.id,
                f.owned.len()
            );
            assert!(
                f.owned.len() <= 60,
                "fragment {} too large: {}",
                f.id,
                f.owned.len()
            );
        }
    }

    #[test]
    fn border_replication_covers_cut_neighbors() {
        let g = barabasi_albert(60, 2, 2);
        let p = edge_cut_partition(&g, 3, 1);
        for (u, v) in g.edges() {
            let (pu, pv) = (p.owner[u], p.owner[v]);
            if pu != pv {
                assert!(p.fragments[pu].covers(v), "{v} replicated into {pu}");
                assert!(p.fragments[pv].covers(u), "{u} replicated into {pv}");
            }
        }
        assert!(p.replication_factor(&g) >= 1.0);
        assert!(p.cut_size(&g) > 0);
    }

    #[test]
    fn single_partition_is_whole_graph() {
        let g = barabasi_albert(30, 2, 5);
        let p = edge_cut_partition(&g, 1, 2);
        assert_eq!(p.fragments[0].owned.len(), 30);
        assert_eq!(p.cut_size(&g), 0);
        assert_eq!(p.fragments[0].edges.len(), g.num_edges());
    }

    #[test]
    fn more_parts_than_nodes_is_clamped() {
        let g = barabasi_albert(5, 1, 0);
        let p = edge_cut_partition(&g, 16, 1);
        assert_eq!(p.num_fragments(), 5);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let mut g = Graph::with_nodes(10);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        // nodes 4..10 isolated
        let p = edge_cut_partition(&g, 3, 1);
        let owned: usize = p.fragments.iter().map(|f| f.owned.len()).sum();
        assert_eq!(owned, 10);
    }

    #[test]
    fn candidate_pairs_touch_owned_nodes() {
        let g = barabasi_albert(20, 2, 8);
        let p = edge_cut_partition(&g, 2, 1);
        for f in &p.fragments {
            for (u, v) in f.candidate_pairs() {
                assert!(f.owns(u) || f.owns(v));
                assert!(f.covers(u) && f.covers(v));
            }
        }
    }

    #[test]
    #[should_panic(expected = "num_parts")]
    fn zero_parts_rejected() {
        let g = barabasi_albert(10, 1, 0);
        edge_cut_partition(&g, 0, 1);
    }

    #[test]
    fn refresh_preserves_replication_invariants() {
        let mut g = barabasi_albert(60, 2, 2);
        let mut p = edge_cut_partition(&g, 3, 1);
        // disturb: remove one cut edge and insert a fresh cross pair
        let (cu, cv) = g
            .edges()
            .find(|&(u, v)| p.owner[u] != p.owner[v])
            .expect("partition has a cut edge");
        g.remove_edge(cu, cv);
        let (iu, iv) = g
            .non_edges()
            .into_iter()
            .find(|&(u, v)| p.owner[u] != p.owner[v])
            .expect("a cross non-edge exists");
        g.add_edge(iu, iv);
        let touched: BTreeSet<NodeId> = [cu, cv, iu, iv].into_iter().collect();
        let refreshed = p
            .refresh_after_disturbance(&g, &touched, 1)
            .expect("node set unchanged");
        assert!(!refreshed.is_empty());
        // the full-build invariants hold on the repaired partition
        for (u, v) in g.edges() {
            let (pu, pv) = (p.owner[u], p.owner[v]);
            if pu != pv {
                assert!(p.fragments[pu].covers(v), "{v} replicated into {pu}");
                assert!(p.fragments[pv].covers(u), "{u} replicated into {pv}");
            }
        }
        for f in &p.fragments {
            let induced: Vec<Edge> = g
                .edges()
                .filter(|&(u, v)| f.nodes.contains(&u) && f.nodes.contains(&v))
                .collect();
            assert_eq!(f.edges, induced, "fragment {} edge list stale", f.id);
        }
    }

    /// Rebuilds one fragment's replicated node set from scratch with the
    /// same recipe the full build uses — the oracle the incremental refresh
    /// must match.
    fn rebuilt_nodes(g: &Graph, p: &Partition, fid: usize, hops: usize) -> BTreeSet<NodeId> {
        let mut nodes = p.fragments[fid].owned.clone();
        for (u, v) in g.edges() {
            let (pu, pv) = (p.owner[u], p.owner[v]);
            if pu == pv {
                continue;
            }
            if pv == fid {
                nodes.extend(k_hop_neighborhood(g, u, hops));
            }
            if pu == fid {
                nodes.extend(k_hop_neighborhood(g, v, hops));
            }
        }
        nodes
    }

    #[test]
    fn refresh_after_a_disturbance_exactly_on_a_cut_edge() {
        // The disturbance removes a cut edge itself — the edge that justified
        // replicating each endpoint's neighborhood into the other fragment.
        // The refresh must drop that now-stale replication (unless another
        // cut edge still justifies it) and match the from-scratch recipe.
        let mut g = barabasi_albert(60, 2, 2);
        let mut p = edge_cut_partition(&g, 3, 1);
        let (cu, cv) = g
            .edges()
            .find(|&(u, v)| p.owner[u] != p.owner[v])
            .expect("partition has a cut edge");
        let (pu, pv) = (p.owner[cu], p.owner[cv]);
        g.remove_edge(cu, cv);

        let touched: BTreeSet<NodeId> = [cu, cv].into_iter().collect();
        let refreshed = p
            .refresh_after_disturbance(&g, &touched, 1)
            .expect("node set unchanged");
        assert!(
            refreshed.contains(&pu) && refreshed.contains(&pv),
            "both endpoint owners must be refreshed, got {refreshed:?}"
        );

        // Ownership is never rebalanced by a refresh.
        for f in &p.fragments {
            for &v in &f.owned {
                assert_eq!(p.owner[v], f.id);
            }
        }
        // Every fragment — refreshed or not — matches the from-scratch
        // replication recipe, and its edge list is the induced subgraph.
        for f in &p.fragments {
            assert_eq!(
                f.nodes,
                rebuilt_nodes(&g, &p, f.id, 1),
                "fragment {} replication diverges from a full rebuild",
                f.id
            );
            let induced: Vec<Edge> = g
                .edges()
                .filter(|&(u, v)| f.nodes.contains(&u) && f.nodes.contains(&v))
                .collect();
            assert_eq!(f.edges, induced, "fragment {} edge list stale", f.id);
            assert!(
                !f.edges.contains(&(cu.min(cv), cu.max(cv))),
                "removed cut edge lingers in fragment {}",
                f.id
            );
        }
    }

    #[test]
    fn refresh_detects_node_set_changes_and_no_op_touches() {
        let mut g = barabasi_albert(30, 2, 5);
        let mut p = edge_cut_partition(&g, 2, 1);
        assert_eq!(
            p.refresh_after_disturbance(&g, &BTreeSet::new(), 1),
            Some(Vec::new()),
            "empty touch set refreshes nothing"
        );
        g.add_node(vec![]);
        assert_eq!(
            p.refresh_after_disturbance(&g, &BTreeSet::new(), 1),
            None,
            "node additions force a rebuild"
        );
    }
}
