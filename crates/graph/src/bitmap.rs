//! Bitmap encodings used by the parallel generator.
//!
//! §VI of the paper compresses each adjacency-matrix row into a bitmap so all
//! workers can share the graph structure cheaply, and uses a second bitmap to
//! record which disturbances have already been verified so that the
//! coordinator does not re-verify them ("does not repeat the verified local
//! ones").

use crate::edge::{norm_edge, Edge};
use crate::graph::{Graph, NodeId};

/// A fixed-length bitset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates a bitmap with `len` zero bits.
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Number of addressable bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(
            i < self.len,
            "Bitmap::set: index {i} out of bounds ({})",
            self.len
        );
        let (w, b) = (i / 64, i % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Reads bit `i`.
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "Bitmap::get: index {i} out of bounds ({})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place bitwise OR with another bitmap of the same length.
    pub fn union_with(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "Bitmap::union_with: length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Serialized size in bytes (for the parallel algorithm's communication-cost model).
    pub fn byte_size(&self) -> usize {
        self.words.len() * 8
    }
}

/// A per-row bitmap encoding of an adjacency matrix (the paper's compressed
/// encoding `B` shared by all fragments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdjacencyBitmap {
    n: usize,
    rows: Vec<Bitmap>,
}

impl AdjacencyBitmap {
    /// Builds the bitmap encoding of a graph's adjacency matrix.
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut rows = vec![Bitmap::new(n); n];
        for (u, v) in graph.edges() {
            rows[u].set(v, true);
            rows[v].set(u, true);
        }
        AdjacencyBitmap { n, rows }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Whether the encoded graph has edge `(u, v)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.n && v < self.n && self.rows[u].get(v)
    }

    /// Degree of `u` in the encoded graph.
    pub fn degree(&self, u: NodeId) -> usize {
        self.rows[u].count_ones()
    }

    /// Total serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.rows.iter().map(|r| r.byte_size()).sum()
    }
}

/// A synchronized record of node pairs whose disturbance has already been
/// verified. Pairs are mapped into a triangular index so that each undirected
/// pair owns exactly one bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifiedPairBitmap {
    n: usize,
    bits: Bitmap,
}

impl VerifiedPairBitmap {
    /// Creates an empty record for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        let pairs = n * n.saturating_sub(1) / 2;
        VerifiedPairBitmap {
            n,
            bits: Bitmap::new(pairs.max(1)),
        }
    }

    fn index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        if u == v || u >= self.n || v >= self.n {
            return None;
        }
        let (u, v) = norm_edge(u, v);
        // index of pair (u, v), u < v, in row-major upper-triangular order
        Some(u * self.n - u * (u + 1) / 2 + (v - u - 1))
    }

    /// Marks a pair as verified. Returns `false` for invalid pairs.
    pub fn mark(&mut self, u: NodeId, v: NodeId) -> bool {
        match self.index(u, v) {
            Some(i) => {
                self.bits.set(i, true);
                true
            }
            None => false,
        }
    }

    /// Marks every pair of an edge list.
    pub fn mark_all<I: IntoIterator<Item = Edge>>(&mut self, pairs: I) {
        for (u, v) in pairs {
            self.mark(u, v);
        }
    }

    /// Whether a pair has been verified already.
    pub fn is_marked(&self, u: NodeId, v: NodeId) -> bool {
        self.index(u, v).map(|i| self.bits.get(i)).unwrap_or(false)
    }

    /// Number of verified pairs.
    pub fn count(&self) -> usize {
        self.bits.count_ones()
    }

    /// Merges another worker's record into this one (the coordinator's
    /// "synchronize B" step).
    pub fn merge(&mut self, other: &VerifiedPairBitmap) {
        assert_eq!(self.n, other.n, "VerifiedPairBitmap::merge: size mismatch");
        self.bits.union_with(&other.bits);
    }

    /// Serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_set_get_count() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bitmap_bounds_checked() {
        let b = Bitmap::new(10);
        b.get(10);
    }

    #[test]
    fn bitmap_union() {
        let mut a = Bitmap::new(70);
        let mut b = Bitmap::new(70);
        a.set(3, true);
        b.set(69, true);
        a.union_with(&b);
        assert!(a.get(3) && a.get(69));
        assert_eq!(a.count_ones(), 2);
        assert_eq!(a.byte_size(), 16);
    }

    #[test]
    fn adjacency_bitmap_mirrors_graph() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        let ab = AdjacencyBitmap::from_graph(&g);
        assert_eq!(ab.num_nodes(), 4);
        assert!(ab.has_edge(1, 0));
        assert!(ab.has_edge(2, 3));
        assert!(!ab.has_edge(0, 2));
        assert_eq!(ab.degree(0), 1);
        assert!(ab.byte_size() >= 4);
    }

    #[test]
    fn verified_pairs_triangular_indexing_is_injective() {
        let n = 7;
        let mut seen = std::collections::BTreeSet::new();
        let vb = VerifiedPairBitmap::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                let i = vb.index(u, v).unwrap();
                assert!(seen.insert(i), "collision at ({u},{v})");
                assert!(i < n * (n - 1) / 2);
            }
        }
    }

    #[test]
    fn verified_pairs_mark_and_merge() {
        let mut a = VerifiedPairBitmap::new(5);
        let mut b = VerifiedPairBitmap::new(5);
        assert!(a.mark(1, 3));
        assert!(b.mark(0, 4));
        assert!(!a.mark(2, 2), "self pair rejected");
        assert!(!a.mark(0, 9), "out of range rejected");
        a.merge(&b);
        assert!(a.is_marked(3, 1));
        assert!(a.is_marked(4, 0));
        assert!(!a.is_marked(0, 1));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn verified_pairs_mark_all() {
        let mut a = VerifiedPairBitmap::new(4);
        a.mark_all([(0, 1), (1, 2), (0, 1)]);
        assert_eq!(a.count(), 2);
    }
}
