//! Random-graph generators (structure only).
//!
//! These produce the *topology* of the synthetic datasets; feature vectors and
//! labels are added by `rcw-datasets`, which layers dataset-specific semantics
//! on top. All generators are deterministic for a given seed.

use crate::graph::{Graph, NodeId};
use crate::traversal::connected_components;
use rcw_linalg::rng::{Rng, SliceRandom};

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// `m` nodes and attaches each new node to `m` existing nodes chosen with
/// probability proportional to degree.
///
/// # Panics
/// Panics if `m == 0` or `n < m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "barabasi_albert: m must be >= 1");
    assert!(n >= m, "barabasi_albert: n must be >= m");
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    // Repeated-nodes list: each endpoint occurrence gives preferential attachment.
    let mut targets: Vec<NodeId> = Vec::new();
    // seed clique
    for u in 0..m {
        for v in (u + 1)..m {
            if g.add_edge(u, v) {
                targets.push(u);
                targets.push(v);
            }
        }
    }
    if m == 1 {
        targets.push(0);
    }
    for new in m..n {
        let mut chosen = std::collections::BTreeSet::new();
        let mut guard = 0;
        while chosen.len() < m && guard < 50 * m {
            let pick = targets[rng.gen_range(0..targets.len())];
            if pick != new {
                chosen.insert(pick);
            }
            guard += 1;
        }
        // fallback: connect to arbitrary distinct existing nodes
        let mut fallback = 0;
        while chosen.len() < m && fallback < new {
            chosen.insert(fallback);
            fallback += 1;
        }
        for &t in &chosen {
            if g.add_edge(new, t) {
                targets.push(new);
                targets.push(t);
            }
        }
    }
    g
}

/// Role of a node inside a house motif (the BAHouse labels 1/2/3 in the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HouseRole {
    /// The roof apex.
    Roof,
    /// One of the two middle nodes under the roof.
    Middle,
    /// One of the two ground (base) nodes.
    Ground,
}

impl HouseRole {
    /// The class label the BAHouse benchmark assigns to this role
    /// (1 = roof, 2 = middle, 3 = ground; base-graph nodes are 0).
    pub fn label(self) -> usize {
        match self {
            HouseRole::Roof => 1,
            HouseRole::Middle => 2,
            HouseRole::Ground => 3,
        }
    }
}

/// Attaches one 5-node "house" motif to `attach_to`, returning the new node
/// ids and their roles. The house consists of a roof node, two middle nodes
/// and two ground nodes; the attachment edge connects one ground node to the
/// base graph, as in the BA-Shapes/BAHouse benchmark.
pub fn attach_house_motif(g: &mut Graph, attach_to: NodeId) -> Vec<(NodeId, HouseRole)> {
    let roof = g.add_node(Vec::new());
    let mid_l = g.add_node(Vec::new());
    let mid_r = g.add_node(Vec::new());
    let gnd_l = g.add_node(Vec::new());
    let gnd_r = g.add_node(Vec::new());
    // roof
    g.add_edge(roof, mid_l);
    g.add_edge(roof, mid_r);
    // walls
    g.add_edge(mid_l, mid_r);
    g.add_edge(mid_l, gnd_l);
    g.add_edge(mid_r, gnd_r);
    // floor
    g.add_edge(gnd_l, gnd_r);
    // attach to base graph
    g.add_edge(gnd_l, attach_to);
    vec![
        (roof, HouseRole::Roof),
        (mid_l, HouseRole::Middle),
        (mid_r, HouseRole::Middle),
        (gnd_l, HouseRole::Ground),
        (gnd_r, HouseRole::Ground),
    ]
}

/// Erdős–Rényi G(n, p) graph.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Stochastic block model / planted-partition graph: nodes are split into
/// blocks of the given sizes; intra-block edges appear with probability
/// `p_in`, inter-block edges with `p_out`. Returns the graph and each node's
/// block id.
pub fn stochastic_block_model(
    block_sizes: &[usize],
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> (Graph, Vec<usize>) {
    let n: usize = block_sizes.iter().sum();
    let mut block_of = Vec::with_capacity(n);
    for (b, &size) in block_sizes.iter().enumerate() {
        block_of.extend(std::iter::repeat_n(b, size));
    }
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = Graph::with_nodes(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let p = if block_of[u] == block_of[v] {
                p_in
            } else {
                p_out
            };
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    (g, block_of)
}

/// Power-law community graph used as the Reddit-like stand-in: a union of
/// Barabási–Albert communities plus sparse random inter-community edges.
/// Returns the graph and each node's community id.
pub fn powerlaw_community_graph(
    num_communities: usize,
    community_size: usize,
    m: usize,
    inter_edges_per_node: f64,
    seed: u64,
) -> (Graph, Vec<usize>) {
    let mut rng = Rng::seed_from_u64(seed);
    let n = num_communities * community_size;
    let mut g = Graph::with_nodes(n);
    let mut community = vec![0usize; n];
    for c in 0..num_communities {
        let offset = c * community_size;
        let local = barabasi_albert(community_size, m, seed.wrapping_add(c as u64 + 1));
        for (u, v) in local.edges() {
            g.add_edge(offset + u, offset + v);
        }
        for i in 0..community_size {
            community[offset + i] = c;
        }
    }
    // sparse bridges
    let total_inter = (inter_edges_per_node * n as f64).round() as usize;
    let mut added = 0;
    let mut guard = 0;
    while added < total_inter && guard < 20 * total_inter.max(1) {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        guard += 1;
        if community[u] != community[v] && g.add_edge(u, v) {
            added += 1;
        }
    }
    (g, community)
}

/// Makes a graph connected by linking each non-principal component to a random
/// node of the largest component. Returns the number of edges added.
pub fn ensure_connected(g: &mut Graph, seed: u64) -> usize {
    let comp = connected_components(g);
    let num = comp.iter().copied().max().map(|m| m + 1).unwrap_or(0);
    if num <= 1 {
        return 0;
    }
    let mut rng = Rng::seed_from_u64(seed);
    // gather members per component
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); num];
    for (v, &c) in comp.iter().enumerate() {
        members[c].push(v);
    }
    members.sort_by_key(|m| std::cmp::Reverse(m.len()));
    let principal = members[0].clone();
    let mut added = 0;
    for other in members.iter().skip(1) {
        let u = *other.choose(&mut rng).expect("non-empty component");
        let v = *principal.choose(&mut rng).expect("non-empty principal");
        if g.add_edge(u, v) {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_connected;

    #[test]
    fn ba_graph_shape() {
        let g = barabasi_albert(100, 3, 1);
        assert_eq!(g.num_nodes(), 100);
        // each of the 97 added nodes contributes up to 3 edges plus the seed clique (3 edges)
        assert!(g.num_edges() <= 3 + 97 * 3);
        assert!(g.num_edges() >= 97, "every new node attaches at least once");
        assert!(is_connected(&g));
    }

    #[test]
    fn ba_is_deterministic() {
        let a = barabasi_albert(50, 2, 9);
        let b = barabasi_albert(50, 2, 9);
        assert_eq!(a.edge_vec(), b.edge_vec());
    }

    #[test]
    #[should_panic(expected = "n must be >= m")]
    fn ba_rejects_bad_params() {
        barabasi_albert(2, 5, 0);
    }

    #[test]
    fn house_motif_structure() {
        let mut g = barabasi_albert(10, 2, 3);
        let before = g.num_nodes();
        let added = attach_house_motif(&mut g, 0);
        assert_eq!(g.num_nodes(), before + 5);
        assert_eq!(added.len(), 5);
        assert_eq!(
            added.iter().filter(|(_, r)| *r == HouseRole::Roof).count(),
            1
        );
        assert_eq!(
            added
                .iter()
                .filter(|(_, r)| *r == HouseRole::Middle)
                .count(),
            2
        );
        assert_eq!(
            added
                .iter()
                .filter(|(_, r)| *r == HouseRole::Ground)
                .count(),
            2
        );
        // the house has 6 internal edges + 1 attachment edge
        let roof = added[0].0;
        assert_eq!(g.degree(roof), 2);
        assert_eq!(HouseRole::Roof.label(), 1);
        assert_eq!(HouseRole::Ground.label(), 3);
    }

    #[test]
    fn er_graph_density_scales_with_p() {
        let sparse = erdos_renyi(60, 0.02, 5);
        let dense = erdos_renyi(60, 0.3, 5);
        assert!(dense.num_edges() > sparse.num_edges());
        let empty = erdos_renyi(20, 0.0, 5);
        assert_eq!(empty.num_edges(), 0);
    }

    #[test]
    fn sbm_prefers_intra_block_edges() {
        let (g, blocks) = stochastic_block_model(&[30, 30], 0.3, 0.01, 11);
        assert_eq!(g.num_nodes(), 60);
        let (mut intra, mut inter) = (0, 0);
        for (u, v) in g.edges() {
            if blocks[u] == blocks[v] {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter * 3, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn powerlaw_communities_are_bridged() {
        let (g, comm) = powerlaw_community_graph(4, 30, 2, 0.2, 7);
        assert_eq!(g.num_nodes(), 120);
        assert_eq!(comm.iter().filter(|&&c| c == 0).count(), 30);
        let inter = g.edges().filter(|&(u, v)| comm[u] != comm[v]).count();
        assert!(inter > 0, "expected at least one inter-community bridge");
    }

    #[test]
    fn ensure_connected_connects() {
        let mut g = Graph::with_nodes(6);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(4, 5);
        assert!(!is_connected(&g));
        let added = ensure_connected(&mut g, 3);
        assert_eq!(added, 2);
        assert!(is_connected(&g));
        assert_eq!(ensure_connected(&mut g, 3), 0);
    }
}
