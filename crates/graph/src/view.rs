//! Edge-masked views of a graph.
//!
//! Every algorithm in the paper repeatedly evaluates the GNN on *derived*
//! graphs without materializing them: `M(v, Gs)` (only the witness edges),
//! `M(v, G \ Gs)` (the graph with witness edges removed), and `M(v, G~)` where
//! `G~` is obtained by flipping up to `k` node pairs. [`GraphView`] provides a
//! cheap, composable overlay over a host [`Graph`] that answers adjacency
//! queries under these modifications without copying the graph.

use crate::edge::{norm_edge, Edge, EdgeSet};
use crate::graph::{Graph, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// A lightweight overlay over a host graph: a restriction to an edge subset
/// plus per-edge presence overrides (forced-present / forced-absent).
#[derive(Clone, Debug)]
pub struct GraphView<'g> {
    graph: &'g Graph,
    /// If set, only edges in this adjacency are visible from the base graph.
    only_adj: Option<Vec<BTreeSet<NodeId>>>,
    /// Forced edge states: `true` = present, `false` = absent. Overrides win
    /// over both the base graph and the restriction.
    overrides: BTreeMap<Edge, bool>,
}

impl<'g> GraphView<'g> {
    /// A view showing the host graph unchanged.
    pub fn full(graph: &'g Graph) -> Self {
        GraphView {
            graph,
            only_adj: None,
            overrides: BTreeMap::new(),
        }
    }

    /// A view showing only the edges of `edges` (the `M(v, Gs)` evaluation).
    /// Nodes keep their identity; edges outside the set disappear.
    pub fn restricted_to(graph: &'g Graph, edges: &EdgeSet) -> Self {
        let mut adj = vec![BTreeSet::new(); graph.num_nodes()];
        for (u, v) in edges.iter() {
            if graph.has_edge(u, v) {
                adj[u].insert(v);
                adj[v].insert(u);
            }
        }
        GraphView {
            graph,
            only_adj: Some(adj),
            overrides: BTreeMap::new(),
        }
    }

    /// A view of the host graph with the given edges removed
    /// (the `M(v, G \ Gs)` evaluation).
    pub fn without(graph: &'g Graph, edges: &EdgeSet) -> Self {
        let mut v = GraphView::full(graph);
        v.remove_edges(edges);
        v
    }

    /// The underlying host graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Number of nodes (views never change the node set).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Force-removes a set of edges from the view.
    pub fn remove_edges(&mut self, edges: &EdgeSet) {
        for (u, v) in edges.iter() {
            self.overrides.insert(norm_edge(u, v), false);
        }
    }

    /// Force-adds a set of node pairs to the view.
    pub fn add_edges(&mut self, edges: &EdgeSet) {
        for (u, v) in edges.iter() {
            if u != v && self.graph.contains_node(u) && self.graph.contains_node(v) {
                self.overrides.insert(norm_edge(u, v), true);
            }
        }
    }

    /// Flips each node pair relative to the view's *current* state: a visible
    /// edge becomes absent and vice versa. This is the paper's k-disturbance.
    pub fn flip_edges(&mut self, pairs: &EdgeSet) {
        for (u, v) in pairs.iter() {
            if u == v || !self.graph.contains_node(u) || !self.graph.contains_node(v) {
                continue;
            }
            let current = self.has_edge(u, v);
            self.overrides.insert(norm_edge(u, v), !current);
        }
    }

    /// Returns a copy of this view with the node pairs flipped.
    pub fn flipped(&self, pairs: &EdgeSet) -> GraphView<'g> {
        let mut v = self.clone();
        v.flip_edges(pairs);
        v
    }

    /// Whether the edge `(u, v)` is visible in this view.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || !self.graph.contains_node(u) || !self.graph.contains_node(v) {
            return false;
        }
        if let Some(&forced) = self.overrides.get(&norm_edge(u, v)) {
            return forced;
        }
        match &self.only_adj {
            Some(adj) => adj[u].contains(&v),
            None => self.graph.has_edge(u, v),
        }
    }

    /// Visible neighbors of `u`, in ascending order.
    pub fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = BTreeSet::new();
        match &self.only_adj {
            Some(adj) => out.extend(adj[u].iter().copied()),
            None => out.extend(self.graph.neighbors(u)),
        }
        // apply overrides touching u
        for (&(a, b), &present) in &self.overrides {
            let other = if a == u {
                b
            } else if b == u {
                a
            } else {
                continue;
            };
            if present {
                out.insert(other);
            } else {
                out.remove(&other);
            }
        }
        out.into_iter().collect()
    }

    /// Visible degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Number of visible edges.
    pub fn num_edges(&self) -> usize {
        self.edges().len()
    }

    /// All visible edges (`u < v`, sorted).
    pub fn edges(&self) -> Vec<Edge> {
        let mut set: BTreeSet<Edge> = BTreeSet::new();
        match &self.only_adj {
            Some(adj) => {
                for (u, nbrs) in adj.iter().enumerate() {
                    for &v in nbrs {
                        if u < v {
                            set.insert((u, v));
                        }
                    }
                }
            }
            None => {
                set.extend(self.graph.edges());
            }
        }
        for (&e, &present) in &self.overrides {
            if present {
                set.insert(e);
            } else {
                set.remove(&e);
            }
        }
        set.into_iter().collect()
    }

    /// Materializes the view as a standalone [`Graph`], copying features and
    /// labels from the host.
    pub fn materialize(&self) -> Graph {
        let mut g = Graph::with_nodes(self.graph.num_nodes());
        for v in self.graph.node_ids() {
            g.set_features(v, self.graph.features(v).to_vec());
            if let Some(l) = self.graph.label(v) {
                g.set_label(v, l);
            }
        }
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// Returns the overrides currently applied (useful for debugging and for
    /// the parallel algorithm's bitmap bookkeeping).
    pub fn overrides(&self) -> &BTreeMap<Edge, bool> {
        &self.overrides
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn full_view_mirrors_graph() {
        let g = path4();
        let v = GraphView::full(&g);
        assert_eq!(v.num_nodes(), 4);
        assert_eq!(v.num_edges(), 3);
        assert_eq!(v.neighbors(1), vec![0, 2]);
        assert!(v.has_edge(2, 3));
        assert!(!v.has_edge(0, 3));
    }

    #[test]
    fn restricted_view_only_shows_witness_edges() {
        let g = path4();
        let gs = EdgeSet::from_iter([(1, 2)]);
        let v = GraphView::restricted_to(&g, &gs);
        assert!(v.has_edge(1, 2));
        assert!(!v.has_edge(0, 1));
        assert_eq!(v.neighbors(1), vec![2]);
        assert_eq!(v.num_edges(), 1);
    }

    #[test]
    fn restricted_view_ignores_edges_missing_from_host() {
        let g = path4();
        let gs = EdgeSet::from_iter([(0, 3)]); // not an edge of g
        let v = GraphView::restricted_to(&g, &gs);
        assert_eq!(v.num_edges(), 0);
    }

    #[test]
    fn without_view_removes_edges() {
        let g = path4();
        let gs = EdgeSet::from_iter([(1, 2)]);
        let v = GraphView::without(&g, &gs);
        assert!(!v.has_edge(1, 2));
        assert!(v.has_edge(0, 1));
        assert_eq!(v.num_edges(), 2);
        assert_eq!(v.neighbors(2), vec![3]);
    }

    #[test]
    fn flip_inserts_and_removes() {
        let g = path4();
        let mut v = GraphView::full(&g);
        v.flip_edges(&EdgeSet::from_iter([(0, 3), (0, 1)]));
        assert!(v.has_edge(0, 3), "missing pair becomes an edge");
        assert!(!v.has_edge(0, 1), "existing edge is removed");
        assert_eq!(v.num_edges(), 3);
        // flipping again restores the original state
        v.flip_edges(&EdgeSet::from_iter([(0, 3), (0, 1)]));
        assert!(!v.has_edge(0, 3));
        assert!(v.has_edge(0, 1));
    }

    #[test]
    fn flip_composes_with_removal() {
        let g = path4();
        let gs = EdgeSet::from_iter([(0, 1)]);
        let mut v = GraphView::without(&g, &gs);
        // Disturb the remainder: remove (1,2) and insert (1,3).
        v.flip_edges(&EdgeSet::from_iter([(1, 2), (1, 3)]));
        assert!(!v.has_edge(0, 1));
        assert!(!v.has_edge(1, 2));
        assert!(v.has_edge(1, 3));
        assert_eq!(v.edges(), vec![(1, 3), (2, 3)]);
    }

    #[test]
    fn materialize_round_trips_edges() {
        let mut g = path4();
        g.set_label(0, 2);
        let gs = EdgeSet::from_iter([(2, 3)]);
        let v = GraphView::without(&g, &gs);
        let m = v.materialize();
        assert_eq!(m.num_edges(), 2);
        assert!(!m.has_edge(2, 3));
        assert_eq!(m.label(0), Some(2));
    }

    #[test]
    fn invalid_pairs_are_ignored() {
        let g = path4();
        let mut v = GraphView::full(&g);
        v.flip_edges(&EdgeSet::from_iter([(0, 99)]));
        v.add_edges(&EdgeSet::from_iter([(1, 77)]));
        assert_eq!(v.num_edges(), 3);
        assert!(!v.has_edge(0, 99));
    }
}
