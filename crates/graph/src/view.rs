//! Edge-masked views of a graph.
//!
//! Every algorithm in the paper repeatedly evaluates the GNN on *derived*
//! graphs without materializing them: `M(v, Gs)` (only the witness edges),
//! `M(v, G \ Gs)` (the graph with witness edges removed), and `M(v, G~)` where
//! `G~` is obtained by flipping up to `k` node pairs. [`GraphView`] provides a
//! cheap, composable overlay over a host [`Graph`] that answers adjacency
//! queries under these modifications without copying the graph.
//!
//! Internally a view is a *delta-CSR*: the base layer is the host graph's
//! shared CSR snapshot ([`Graph::csr`], built once per graph) or, for
//! restricted views, a sparse adjacency of the witness edges; on top of it
//! sits a per-endpoint index of forced-present / forced-absent pairs. Both
//! layers are sorted, so `neighbors(u)` is a linear merge —
//! `O(deg(u) + overrides(u))` — instead of the former scan of the entire
//! override map per node.

use crate::edge::{norm_edge, Edge, EdgeSet};
use crate::graph::{Graph, NodeId};
use std::collections::BTreeMap;

/// Per-endpoint index of edge-presence overrides: for every touched node a
/// sorted list of `(other_endpoint, forced_present)`. Each overridden pair is
/// stored under both endpoints so neighbor queries never scan foreign pairs.
#[derive(Clone, Debug, Default)]
struct OverrideIndex {
    by_node: BTreeMap<NodeId, Vec<(NodeId, bool)>>,
    pairs: usize,
}

impl OverrideIndex {
    fn set(&mut self, u: NodeId, v: NodeId, present: bool) {
        let fresh = Self::set_directed(&mut self.by_node, u, v, present);
        Self::set_directed(&mut self.by_node, v, u, present);
        if fresh {
            self.pairs += 1;
        }
    }

    /// Returns `true` if the pair was not overridden before.
    fn set_directed(
        by_node: &mut BTreeMap<NodeId, Vec<(NodeId, bool)>>,
        a: NodeId,
        b: NodeId,
        present: bool,
    ) -> bool {
        let list = by_node.entry(a).or_default();
        match list.binary_search_by_key(&b, |e| e.0) {
            Ok(i) => {
                list[i].1 = present;
                false
            }
            Err(i) => {
                list.insert(i, (b, present));
                true
            }
        }
    }

    fn get(&self, u: NodeId, v: NodeId) -> Option<bool> {
        let list = self.by_node.get(&u)?;
        list.binary_search_by_key(&v, |e| e.0)
            .ok()
            .map(|i| list[i].1)
    }

    fn for_node(&self, u: NodeId) -> &[(NodeId, bool)] {
        self.by_node.get(&u).map(Vec::as_slice).unwrap_or(&[])
    }

    fn is_empty(&self) -> bool {
        self.pairs == 0
    }

    /// All overridden pairs, normalized `u < v`, in ascending order.
    fn iter_pairs(&self) -> impl Iterator<Item = (Edge, bool)> + '_ {
        self.by_node.iter().flat_map(|(&u, list)| {
            list.iter()
                .filter(move |&&(v, _)| u < v)
                .map(move |&(v, present)| ((u, v), present))
        })
    }
}

/// Merges a sorted base neighbor list with a node's sorted overrides,
/// appending into a caller-provided buffer: forced-absent neighbors drop out,
/// forced-present ones are spliced in.
fn merge_neighbors_into(base: &[NodeId], overrides: &[(NodeId, bool)], out: &mut Vec<NodeId>) {
    if overrides.is_empty() {
        out.extend_from_slice(base);
        return;
    }
    out.reserve(base.len() + overrides.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < base.len() || j < overrides.len() {
        if j >= overrides.len() {
            out.push(base[i]);
            i += 1;
        } else if i >= base.len() {
            if overrides[j].1 {
                out.push(overrides[j].0);
            }
            j += 1;
        } else {
            match base[i].cmp(&overrides[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(base[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    if overrides[j].1 {
                        out.push(overrides[j].0);
                    }
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if overrides[j].1 {
                        out.push(base[i]);
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

/// A lightweight overlay over a host graph: a restriction to an edge subset
/// plus per-edge presence overrides (forced-present / forced-absent).
#[derive(Clone, Debug)]
pub struct GraphView<'g> {
    graph: &'g Graph,
    /// If set, only these edges are visible from the base graph. Sparse:
    /// keyed by endpoint, both directions stored, lists sorted.
    only_adj: Option<BTreeMap<NodeId, Vec<NodeId>>>,
    /// Forced edge states: `true` = present, `false` = absent. Overrides win
    /// over both the base graph and the restriction.
    overrides: OverrideIndex,
}

impl<'g> GraphView<'g> {
    /// A view showing the host graph unchanged.
    pub fn full(graph: &'g Graph) -> Self {
        GraphView {
            graph,
            only_adj: None,
            overrides: OverrideIndex::default(),
        }
    }

    /// A view showing only the edges of `edges` (the `M(v, Gs)` evaluation).
    /// Nodes keep their identity; edges outside the set disappear.
    pub fn restricted_to(graph: &'g Graph, edges: &EdgeSet) -> Self {
        let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (u, v) in edges.iter() {
            if graph.has_edge(u, v) {
                adj.entry(u).or_default().push(v);
                adj.entry(v).or_default().push(u);
            }
        }
        for list in adj.values_mut() {
            list.sort_unstable();
            list.dedup();
        }
        GraphView {
            graph,
            only_adj: Some(adj),
            overrides: OverrideIndex::default(),
        }
    }

    /// A view of the host graph with the given edges removed
    /// (the `M(v, G \ Gs)` evaluation).
    pub fn without(graph: &'g Graph, edges: &EdgeSet) -> Self {
        let mut v = GraphView::full(graph);
        v.remove_edges(edges);
        v
    }

    /// The underlying host graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The host graph's structural epoch at the time of the call. Views are
    /// overlays, so a view is only as fresh as its host: callers caching
    /// derived state (CSRs, localities, PPR rows) key it by this value.
    pub fn epoch(&self) -> u64 {
        self.graph.epoch()
    }

    /// Number of nodes (views never change the node set).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Force-removes a single edge from the view.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) {
        if u != v {
            let (u, v) = norm_edge(u, v);
            self.overrides.set(u, v, false);
        }
    }

    /// Force-removes a set of edges from the view.
    pub fn remove_edges(&mut self, edges: &EdgeSet) {
        for (u, v) in edges.iter() {
            self.overrides.set(u, v, false);
        }
    }

    /// Force-adds a set of node pairs to the view.
    pub fn add_edges(&mut self, edges: &EdgeSet) {
        for (u, v) in edges.iter() {
            if u != v && self.graph.contains_node(u) && self.graph.contains_node(v) {
                let (u, v) = norm_edge(u, v);
                self.overrides.set(u, v, true);
            }
        }
    }

    /// Flips each node pair relative to the view's *current* state: a visible
    /// edge becomes absent and vice versa. This is the paper's k-disturbance.
    pub fn flip_edges(&mut self, pairs: &EdgeSet) {
        for (u, v) in pairs.iter() {
            if u == v || !self.graph.contains_node(u) || !self.graph.contains_node(v) {
                continue;
            }
            let current = self.has_edge(u, v);
            let (u, v) = norm_edge(u, v);
            self.overrides.set(u, v, !current);
        }
    }

    /// Returns a copy of this view with the node pairs flipped.
    pub fn flipped(&self, pairs: &EdgeSet) -> GraphView<'g> {
        let mut v = self.clone();
        v.flip_edges(pairs);
        v
    }

    /// Whether the edge `(u, v)` is visible in this view.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v || !self.graph.contains_node(u) || !self.graph.contains_node(v) {
            return false;
        }
        if let Some(forced) = self.overrides.get(u, v) {
            return forced;
        }
        match &self.only_adj {
            Some(adj) => adj
                .get(&u)
                .is_some_and(|list| list.binary_search(&v).is_ok()),
            None => self.graph.has_edge(u, v),
        }
    }

    /// Visible neighbors of `u`, in ascending order.
    pub fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(u, &mut out);
        out
    }

    /// Appends the visible neighbors of `u` (ascending) to `out` without
    /// clearing it — the allocation-free arena path used by ball extraction.
    pub fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        assert!(self.graph.contains_node(u), "neighbors: invalid node {u}");
        let overrides = self.overrides.for_node(u);
        match &self.only_adj {
            Some(adj) => merge_neighbors_into(
                adj.get(&u).map(Vec::as_slice).unwrap_or(&[]),
                overrides,
                out,
            ),
            None => merge_neighbors_into(self.graph.csr().neighbors(u), overrides, out),
        }
    }

    /// Whether this view shows the host graph completely unchanged (no
    /// restriction and no overrides), in which case derived state cached on
    /// the host graph — CSR snapshot, normalization vectors — applies as-is.
    pub fn is_unmasked(&self) -> bool {
        self.only_adj.is_none() && !self.has_overrides()
    }

    /// Visible degree of `u`.
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Number of visible edges.
    pub fn num_edges(&self) -> usize {
        self.edges().len()
    }

    /// All visible edges (`u < v`, sorted).
    pub fn edges(&self) -> Vec<Edge> {
        use std::collections::BTreeSet;
        let mut set: BTreeSet<Edge> = match &self.only_adj {
            Some(adj) => adj
                .iter()
                .flat_map(|(&u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
                .collect(),
            None => self.graph.edges().collect(),
        };
        for (e, present) in self.overrides.iter_pairs() {
            if present {
                set.insert(e);
            } else {
                set.remove(&e);
            }
        }
        set.into_iter().collect()
    }

    /// Materializes the view as a standalone [`Graph`], copying features and
    /// labels from the host.
    pub fn materialize(&self) -> Graph {
        let mut g = Graph::with_nodes(self.graph.num_nodes());
        for v in self.graph.node_ids() {
            g.set_features(v, self.graph.features(v).to_vec());
            if let Some(l) = self.graph.label(v) {
                g.set_label(v, l);
            }
        }
        for (u, v) in self.edges() {
            g.add_edge(u, v);
        }
        g
    }

    /// Whether any overrides are applied on top of the base layer.
    pub fn has_overrides(&self) -> bool {
        !self.overrides.is_empty()
    }

    /// The overrides currently applied, normalized `u < v` and ascending
    /// (useful for debugging and for the parallel algorithm's bitmap
    /// bookkeeping).
    pub fn overrides(&self) -> Vec<(Edge, bool)> {
        self.overrides.iter_pairs().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn full_view_mirrors_graph() {
        let g = path4();
        let v = GraphView::full(&g);
        assert_eq!(v.num_nodes(), 4);
        assert_eq!(v.num_edges(), 3);
        assert_eq!(v.neighbors(1), vec![0, 2]);
        assert!(v.has_edge(2, 3));
        assert!(!v.has_edge(0, 3));
    }

    #[test]
    fn restricted_view_only_shows_witness_edges() {
        let g = path4();
        let gs = EdgeSet::from_iter([(1, 2)]);
        let v = GraphView::restricted_to(&g, &gs);
        assert!(v.has_edge(1, 2));
        assert!(!v.has_edge(0, 1));
        assert_eq!(v.neighbors(1), vec![2]);
        assert_eq!(v.num_edges(), 1);
    }

    #[test]
    fn restricted_view_ignores_edges_missing_from_host() {
        let g = path4();
        let gs = EdgeSet::from_iter([(0, 3)]); // not an edge of g
        let v = GraphView::restricted_to(&g, &gs);
        assert_eq!(v.num_edges(), 0);
    }

    #[test]
    fn without_view_removes_edges() {
        let g = path4();
        let gs = EdgeSet::from_iter([(1, 2)]);
        let v = GraphView::without(&g, &gs);
        assert!(!v.has_edge(1, 2));
        assert!(v.has_edge(0, 1));
        assert_eq!(v.num_edges(), 2);
        assert_eq!(v.neighbors(2), vec![3]);
    }

    #[test]
    fn flip_inserts_and_removes() {
        let g = path4();
        let mut v = GraphView::full(&g);
        v.flip_edges(&EdgeSet::from_iter([(0, 3), (0, 1)]));
        assert!(v.has_edge(0, 3), "missing pair becomes an edge");
        assert!(!v.has_edge(0, 1), "existing edge is removed");
        assert_eq!(v.num_edges(), 3);
        // flipping again restores the original state
        v.flip_edges(&EdgeSet::from_iter([(0, 3), (0, 1)]));
        assert!(!v.has_edge(0, 3));
        assert!(v.has_edge(0, 1));
    }

    #[test]
    fn flip_composes_with_removal() {
        let g = path4();
        let gs = EdgeSet::from_iter([(0, 1)]);
        let mut v = GraphView::without(&g, &gs);
        // Disturb the remainder: remove (1,2) and insert (1,3).
        v.flip_edges(&EdgeSet::from_iter([(1, 2), (1, 3)]));
        assert!(!v.has_edge(0, 1));
        assert!(!v.has_edge(1, 2));
        assert!(v.has_edge(1, 3));
        assert_eq!(v.edges(), vec![(1, 3), (2, 3)]);
    }

    #[test]
    fn materialize_round_trips_edges() {
        let mut g = path4();
        g.set_label(0, 2);
        let gs = EdgeSet::from_iter([(2, 3)]);
        let v = GraphView::without(&g, &gs);
        let m = v.materialize();
        assert_eq!(m.num_edges(), 2);
        assert!(!m.has_edge(2, 3));
        assert_eq!(m.label(0), Some(2));
    }

    #[test]
    fn invalid_pairs_are_ignored() {
        let g = path4();
        let mut v = GraphView::full(&g);
        v.flip_edges(&EdgeSet::from_iter([(0, 99)]));
        v.add_edges(&EdgeSet::from_iter([(1, 77)]));
        assert_eq!(v.num_edges(), 3);
        assert!(!v.has_edge(0, 99));
    }

    #[test]
    fn neighbors_merge_overrides_on_both_endpoints() {
        let g = path4();
        let mut v = GraphView::full(&g);
        v.add_edges(&EdgeSet::from_iter([(3, 0)]));
        v.remove_edges(&EdgeSet::from_iter([(1, 2)]));
        assert_eq!(v.neighbors(0), vec![1, 3]);
        assert_eq!(v.neighbors(3), vec![0, 2]);
        assert_eq!(v.neighbors(1), vec![0]);
        assert_eq!(v.neighbors(2), vec![3]);
        assert!(v.has_overrides());
        assert_eq!(v.overrides(), vec![((0, 3), true), ((1, 2), false)]);
    }

    #[test]
    fn overrides_on_restricted_views_merge_sparsely() {
        let g = path4();
        let gs = EdgeSet::from_iter([(0, 1), (1, 2)]);
        let mut v = GraphView::restricted_to(&g, &gs);
        v.flip_edges(&EdgeSet::from_iter([(0, 1), (0, 2)]));
        assert_eq!(v.neighbors(0), vec![2]);
        assert_eq!(v.neighbors(1), vec![2]);
        assert_eq!(v.edges(), vec![(0, 2), (1, 2)]);
    }
}
