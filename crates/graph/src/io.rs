//! Plain-text import/export of graphs and witnesses.
//!
//! A small, dependency-free interchange format so that generated witnesses and
//! synthetic datasets can be inspected, diffed, or loaded into external tools:
//!
//! ```text
//! # graph <num_nodes>
//! node <id> <label|-> <f1> <f2> ...
//! edge <u> <v>
//! ```
//!
//! Witnesses use the same `node`/`edge` lines without features.

use crate::edge::EdgeSet;
use crate::graph::Graph;
use crate::subgraph::EdgeSubgraph;

/// Error produced when parsing the text format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes a graph (structure, labels, features) to the text format.
pub fn graph_to_text(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str(&format!("# graph {}\n", graph.num_nodes()));
    for v in graph.node_ids() {
        let label = graph
            .label(v)
            .map(|l| l.to_string())
            .unwrap_or_else(|| "-".to_string());
        let feats: Vec<String> = graph.features(v).iter().map(|x| format!("{x}")).collect();
        out.push_str(&format!("node {v} {label} {}\n", feats.join(" ")));
    }
    for (u, v) in graph.edges() {
        out.push_str(&format!("edge {u} {v}\n"));
    }
    out
}

/// Parses a graph from the text format produced by [`graph_to_text`].
pub fn graph_from_text(text: &str) -> Result<Graph, ParseError> {
    let mut graph = Graph::new();
    let mut declared = None;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["#", "graph", n] => {
                let n: usize = n.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid node count '{n}'"),
                })?;
                declared = Some(n);
                while graph.num_nodes() < n {
                    graph.add_node(Vec::new());
                }
            }
            ["node", id, label, feats @ ..] => {
                let id: usize = id.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid node id '{id}'"),
                })?;
                while graph.num_nodes() <= id {
                    graph.add_node(Vec::new());
                }
                if *label != "-" {
                    let l: usize = label.parse().map_err(|_| ParseError {
                        line: line_no,
                        message: format!("invalid label '{label}'"),
                    })?;
                    graph.set_label(id, l);
                }
                let features: Result<Vec<f64>, _> = feats.iter().map(|f| f.parse()).collect();
                graph.set_features(
                    id,
                    features.map_err(|_| ParseError {
                        line: line_no,
                        message: "invalid feature value".to_string(),
                    })?,
                );
            }
            ["edge", u, v] => {
                let u: usize = u.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid endpoint '{u}'"),
                })?;
                let v: usize = v.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid endpoint '{v}'"),
                })?;
                if !graph.contains_node(u) || !graph.contains_node(v) {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("edge ({u},{v}) references an undeclared node"),
                    });
                }
                graph.add_edge(u, v);
            }
            _ => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("unrecognized line '{line}'"),
                })
            }
        }
    }
    if let Some(n) = declared {
        if graph.num_nodes() != n {
            return Err(ParseError {
                line: 1,
                message: format!("declared {n} nodes but found {}", graph.num_nodes()),
            });
        }
    }
    Ok(graph)
}

/// Serializes a witness subgraph (nodes and edges only).
pub fn subgraph_to_text(subgraph: &EdgeSubgraph) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# witness {} {}\n",
        subgraph.num_nodes(),
        subgraph.num_edges()
    ));
    for &v in subgraph.nodes() {
        out.push_str(&format!("node {v}\n"));
    }
    for (u, v) in subgraph.edges().iter() {
        out.push_str(&format!("edge {u} {v}\n"));
    }
    out
}

/// Parses a witness subgraph from the text format produced by
/// [`subgraph_to_text`].
pub fn subgraph_from_text(text: &str) -> Result<EdgeSubgraph, ParseError> {
    let mut nodes = Vec::new();
    let mut edges = EdgeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["node", v] => {
                nodes.push(v.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid node id '{v}'"),
                })?);
            }
            ["edge", u, v] => {
                let u: usize = u.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid endpoint '{u}'"),
                })?;
                let v: usize = v.parse().map_err(|_| ParseError {
                    line: line_no,
                    message: format!("invalid endpoint '{v}'"),
                })?;
                edges.insert(u, v);
            }
            _ => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("unrecognized line '{line}'"),
                })
            }
        }
    }
    let mut out = EdgeSubgraph::from_edges(edges.iter());
    for v in nodes {
        out.add_node(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        g.add_labeled_node(vec![1.0, 0.5], 0);
        g.add_labeled_node(vec![0.0, 1.0], 1);
        g.add_node(vec![0.25]);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g
    }

    #[test]
    fn graph_round_trips() {
        let g = sample_graph();
        let text = graph_to_text(&g);
        let parsed = graph_from_text(&text).unwrap();
        assert_eq!(parsed.num_nodes(), g.num_nodes());
        assert_eq!(parsed.edge_vec(), g.edge_vec());
        assert_eq!(parsed.label(0), Some(0));
        assert_eq!(parsed.label(2), None);
        assert_eq!(parsed.features(0), g.features(0));
    }

    #[test]
    fn witness_round_trips() {
        let w = EdgeSubgraph::from_edges([(0, 1), (2, 3)]);
        let text = subgraph_to_text(&w);
        let parsed = subgraph_from_text(&text).unwrap();
        assert_eq!(parsed, w);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = graph_from_text("node 0 -\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unrecognized"));
        let err = graph_from_text("edge 0 1\n").unwrap_err();
        assert!(err.message.contains("undeclared node"));
        let err = graph_from_text("# graph x\n").unwrap_err();
        assert!(err.message.contains("invalid node count"));
    }

    #[test]
    fn declared_count_is_validated() {
        let err = graph_from_text("# graph 2\nnode 5 -\n").unwrap_err();
        assert!(err.message.contains("declared 2 nodes"));
    }

    #[test]
    fn empty_input_parses_to_empty_structures() {
        assert_eq!(graph_from_text("").unwrap().num_nodes(), 0);
        assert!(subgraph_from_text("# witness 0 0\n").unwrap().is_empty());
    }
}
