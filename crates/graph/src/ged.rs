//! Graph edit distance between witness subgraphs.
//!
//! The paper evaluates robustness with a *normalized GED* (Eq. 3): the number
//! of edits needed to transform one explanation into another, divided by the
//! size (`|V| + |E|`) of the larger one. Because witnesses extracted from the
//! same host graph share node identity, the edit distance reduces to the size
//! of the symmetric difference of node and edge sets — no correspondence
//! search is needed, which keeps the metric exact and fast.

use crate::subgraph::EdgeSubgraph;

/// Raw graph edit distance between two witnesses over the same host graph:
/// number of node insertions/deletions plus edge insertions/deletions.
pub fn ged(a: &EdgeSubgraph, b: &EdgeSubgraph) -> usize {
    let node_diff = a.nodes().symmetric_difference(b.nodes()).count();
    let edge_diff = a.edges().symmetric_difference(b.edges()).len();
    node_diff + edge_diff
}

/// Normalized GED per Eq. 3 of the paper: `GED(a, b) / max(|a|, |b|)` where
/// `|x| = #nodes + #edges`. Two empty witnesses have distance 0. The result is
/// clamped into `[0, 2]`; values above 1 can occur when the witnesses are
/// almost disjoint (symmetric difference can be as large as `|a| + |b|`).
pub fn normalized_ged(a: &EdgeSubgraph, b: &EdgeSubgraph) -> f64 {
    let denom = a.size().max(b.size());
    if denom == 0 {
        return 0.0;
    }
    ged(a, b) as f64 / denom as f64
}

/// Jaccard similarity of the edge sets of two witnesses (1.0 for identical,
/// 0.0 for disjoint). A complementary stability measure used in case studies.
pub fn edge_jaccard(a: &EdgeSubgraph, b: &EdgeSubgraph) -> f64 {
    let inter = a.edges().intersection(b.edges()).len();
    let union = a.edges().union(b.edges()).len();
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_witnesses_have_zero_distance() {
        let a = EdgeSubgraph::from_edges([(0, 1), (1, 2)]);
        assert_eq!(ged(&a, &a), 0);
        assert_eq!(normalized_ged(&a, &a), 0.0);
        assert_eq!(edge_jaccard(&a, &a), 1.0);
    }

    #[test]
    fn distance_counts_both_nodes_and_edges() {
        let a = EdgeSubgraph::from_edges([(0, 1), (1, 2)]); // nodes {0,1,2}
        let b = EdgeSubgraph::from_edges([(0, 1), (1, 3)]); // nodes {0,1,3}
                                                            // node diff: {2,3} -> 2 ; edge diff: {(1,2),(1,3)} -> 2
        assert_eq!(ged(&a, &b), 4);
        assert!((normalized_ged(&a, &b) - 4.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_witnesses() {
        let a = EdgeSubgraph::from_edges([(0, 1)]);
        let b = EdgeSubgraph::from_edges([(2, 3)]);
        assert_eq!(ged(&a, &b), 6);
        assert_eq!(edge_jaccard(&a, &b), 0.0);
        assert!(normalized_ged(&a, &b) <= 2.0);
    }

    #[test]
    fn empty_witnesses() {
        let e = EdgeSubgraph::new();
        let a = EdgeSubgraph::from_edges([(0, 1)]);
        assert_eq!(normalized_ged(&e, &e), 0.0);
        assert_eq!(ged(&e, &a), 3);
        assert_eq!(normalized_ged(&e, &a), 1.0);
        assert_eq!(edge_jaccard(&e, &e), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = EdgeSubgraph::from_edges([(0, 1), (1, 2), (2, 3)]);
        let b = EdgeSubgraph::from_edges([(1, 2), (3, 4)]);
        assert_eq!(ged(&a, &b), ged(&b, &a));
        assert_eq!(normalized_ged(&a, &b), normalized_ged(&b, &a));
        assert_eq!(edge_jaccard(&a, &b), edge_jaccard(&b, &a));
    }
}
