//! Compressed sparse row (CSR) adjacency.
//!
//! GNN inference iterates over neighbor lists many times per layer. Building a
//! [`Csr`] snapshot of a [`GraphView`] once per inference call avoids repeated
//! override resolution in the hot loop.

use crate::graph::{Graph, NodeId};
use crate::view::GraphView;

/// Immutable CSR adjacency snapshot with symmetric-normalization helpers.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR snapshot from a graph view.
    pub fn from_view(view: &GraphView<'_>) -> Self {
        let n = view.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for u in 0..n {
            let nbrs = view.neighbors(u);
            targets.extend_from_slice(&nbrs);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR snapshot of a host graph's adjacency (the base layer the
    /// delta-CSR views apply their overrides to).
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for u in 0..n {
            targets.extend(graph.neighbors(u));
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR from pre-validated parts: `offsets` must be monotone with
    /// `offsets[0] == 0`, and each neighbor slice must be sorted and deduped.
    /// Used by [`crate::localize::Locality`], which produces exactly that.
    pub(crate) fn from_raw_parts(offsets: Vec<usize>, targets: Vec<NodeId>) -> Self {
        debug_assert!(offsets.first() == Some(&0));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        debug_assert_eq!(*offsets.last().expect("non-empty offsets"), targets.len());
        Csr { offsets, targets }
    }

    /// A copy of this CSR with the arcs `u -> v` and `v -> u` removed
    /// (absent arcs are a no-op). Neighbor order of every surviving arc is
    /// preserved, so downstream floating-point reductions stay bit-stable.
    pub fn minus_arc_pair(&self, u: NodeId, v: NodeId) -> Csr {
        let mut offsets = Vec::with_capacity(self.offsets.len());
        let mut targets = Vec::with_capacity(self.targets.len());
        offsets.push(0);
        for i in 0..self.num_nodes() {
            for &t in self.neighbors(i) {
                if (i == u && t == v) || (i == v && t == u) {
                    continue;
                }
                targets.push(t);
            }
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR snapshot directly from adjacency lists.
    pub fn from_adjacency(adj: &[Vec<NodeId>]) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for nbrs in adj {
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            targets.extend_from_slice(&sorted);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs stored (twice the undirected edge count).
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `u` as a slice.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Whether `(u, v)` is an arc (binary search on the neighbor slice).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Multiplies the symmetrically normalized adjacency (with self-loops)
    /// `D^{-1/2} (A + I) D^{-1/2}` against a dense feature matrix given as a
    /// row-major buffer with `dim` columns, writing into `out`.
    pub fn spmm_sym_norm(&self, x: &[f64], dim: usize, out: &mut [f64]) {
        let degrees: Vec<f64> = (0..self.num_nodes())
            .map(|u| self.degree(u) as f64)
            .collect();
        self.spmm_sym_norm_deg(&degrees, x, dim, out, None);
    }

    /// [`Csr::spmm_sym_norm`] with an explicit degree vector (without the
    /// self-loop; `+1` is applied here) and an optional output-row schedule.
    ///
    /// The explicit degrees let an induced receptive-field subgraph normalize
    /// with the *host view's* true degrees, which is what makes localized
    /// inference bit-exact. When `rows` is given, only those output rows are
    /// computed (the rest stay zero); input rows outside the schedule are
    /// still read, so callers must ensure they hold valid values.
    pub fn spmm_sym_norm_deg(
        &self,
        degrees: &[f64],
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = self.num_nodes();
        assert_eq!(degrees.len(), n, "spmm: degree vector size mismatch");
        assert_eq!(x.len(), n * dim, "spmm: input size mismatch");
        assert_eq!(out.len(), n * dim, "spmm: output size mismatch");
        let inv_sqrt: Vec<f64> = degrees.iter().map(|d| 1.0 / (d + 1.0).sqrt()).collect();
        out.fill(0.0);
        let mut row = |u: usize| {
            let du = inv_sqrt[u];
            // self-loop contribution
            for c in 0..dim {
                out[u * dim + c] += du * du * x[u * dim + c];
            }
            for &v in self.neighbors(u) {
                let w = du * inv_sqrt[v];
                for c in 0..dim {
                    out[u * dim + c] += w * x[v * dim + c];
                }
            }
        };
        match rows {
            None => (0..n).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }

    /// Multiplies the row-normalized adjacency with self-loops
    /// `D^{-1} (A + I)` against a dense matrix (APPNP's propagation operator).
    pub fn spmm_row_norm(&self, x: &[f64], dim: usize, out: &mut [f64]) {
        let degrees: Vec<f64> = (0..self.num_nodes())
            .map(|u| self.degree(u) as f64)
            .collect();
        self.spmm_row_norm_deg(&degrees, x, dim, out, None);
    }

    /// [`Csr::spmm_row_norm`] with an explicit degree vector and an optional
    /// output-row schedule; see [`Csr::spmm_sym_norm_deg`] for the contract.
    pub fn spmm_row_norm_deg(
        &self,
        degrees: &[f64],
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = self.num_nodes();
        assert_eq!(degrees.len(), n, "spmm: degree vector size mismatch");
        assert_eq!(x.len(), n * dim, "spmm: input size mismatch");
        assert_eq!(out.len(), n * dim, "spmm: output size mismatch");
        out.fill(0.0);
        let mut row = |u: usize| {
            let d = degrees[u] + 1.0;
            let w = 1.0 / d;
            for c in 0..dim {
                out[u * dim + c] += w * x[u * dim + c];
            }
            for &v in self.neighbors(u) {
                for c in 0..dim {
                    out[u * dim + c] += w * x[v * dim + c];
                }
            }
        };
        match rows {
            None => (0..n).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn star() -> Graph {
        // node 0 connected to 1, 2, 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g
    }

    #[test]
    fn csr_matches_view() {
        let g = star();
        let view = GraphView::full(&g);
        let csr = Csr::from_view(&view);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_arcs(), 6);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.degree(0), 3);
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(1, 2));
    }

    #[test]
    fn from_adjacency_sorts_and_dedups() {
        let csr = Csr::from_adjacency(&[vec![2, 1, 1], vec![0], vec![0]]);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.num_arcs(), 4);
    }

    #[test]
    fn sym_norm_spmm_of_constant_vector() {
        // For x = all-ones and symmetric normalization with self-loops,
        // row u gets sum over {u} ∪ N(u) of 1/sqrt(d_u d_v).
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![1.0; 4];
        let mut out = vec![0.0; 4];
        csr.spmm_sym_norm(&x, 1, &mut out);
        let d0 = 4.0_f64;
        let dleaf = 2.0_f64;
        let expected0 = 1.0 / d0 + 3.0 / (d0.sqrt() * dleaf.sqrt());
        assert!((out[0] - expected0).abs() < 1e-12);
        let expected_leaf = 1.0 / dleaf + 1.0 / (d0.sqrt() * dleaf.sqrt());
        assert!((out[1] - expected_leaf).abs() < 1e-12);
    }

    #[test]
    fn row_norm_spmm_preserves_constant_vectors() {
        // Row-normalized propagation of a constant vector stays constant.
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![2.5; 4];
        let mut out = vec![0.0; 4];
        csr.spmm_row_norm(&x, 1, &mut out);
        for v in out {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn spmm_respects_multiple_columns() {
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![
            1.0, 0.0, //
            0.0, 1.0, //
            0.0, 1.0, //
            0.0, 1.0,
        ];
        let mut out = vec![0.0; 8];
        csr.spmm_row_norm(&x, 2, &mut out);
        // node 1 row: (x1 + x0) / 2 = (0+1, 1+0)/2
        assert!((out[2] - 0.5).abs() < 1e-12);
        assert!((out[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "spmm")]
    fn spmm_panics_on_bad_dims() {
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![0.0; 3];
        let mut out = vec![0.0; 4];
        csr.spmm_row_norm(&x, 1, &mut out);
    }
}
