//! Compressed sparse row (CSR) adjacency.
//!
//! GNN inference iterates over neighbor lists many times per layer. Building a
//! [`Csr`] snapshot of a [`GraphView`] once per inference call avoids repeated
//! override resolution in the hot loop.
//!
//! The SpMM kernels come in two flavors: `*_cached`, which take a
//! pre-computed [`CsrNorms`] normalization vector and dispatch to
//! exact-width inner loops the compiler can autovectorize, and the retained
//! scalar `*_deg_ref` references they are pinned bit-exact against by the
//! equivalence sweeps below and in `rcw-gnn`.

use crate::graph::{Graph, NodeId};
use crate::view::GraphView;

/// Pre-computed normalization vectors for the SpMM kernels: per-node degrees
/// (without the self-loop) alongside `1 / sqrt(d + 1)` and `1 / (d + 1)`.
///
/// Rebuilding these per SpMM call costs two allocations and a `sqrt` per node
/// per layer; engines cache one `CsrNorms` next to their CSR snapshot
/// (invalidated together by the graph epoch) and localized balls keep one per
/// ball. All derived values are computed with the exact same expressions the
/// scalar reference kernels used, so cached and per-call normalization are
/// bit-identical.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CsrNorms {
    degrees: Vec<f64>,
    inv_sqrt: Vec<f64>,
    inv_deg: Vec<f64>,
}

impl CsrNorms {
    /// Builds the normalization vectors from explicit degrees (without the
    /// self-loop; the `+1` is applied here, as in the SpMM kernels).
    pub fn from_degrees(degrees: Vec<f64>) -> Self {
        let inv_sqrt = degrees.iter().map(|d| 1.0 / (d + 1.0).sqrt()).collect();
        let inv_deg = degrees.iter().map(|d| 1.0 / (d + 1.0)).collect();
        CsrNorms {
            degrees,
            inv_sqrt,
            inv_deg,
        }
    }

    /// Builds the normalization vectors from a CSR's own degrees.
    pub fn from_csr(csr: &Csr) -> Self {
        Self::from_degrees((0..csr.num_nodes()).map(|u| csr.degree(u) as f64).collect())
    }

    /// Number of nodes covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.degrees.len()
    }

    /// Whether the vector covers zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.degrees.is_empty()
    }

    /// The raw degree vector (without self-loops).
    #[inline]
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// Per-node `1 / sqrt(d + 1)`.
    #[inline]
    pub fn inv_sqrt(&self) -> &[f64] {
        &self.inv_sqrt
    }

    /// Per-node `1 / (d + 1)`.
    #[inline]
    pub fn inv_deg(&self) -> &[f64] {
        &self.inv_deg
    }

    /// Decrements node `u`'s degree by one and recomputes its derived values
    /// (used when an edge incident to `u` is removed from the ball).
    #[inline]
    pub fn decrement(&mut self, u: usize) {
        let d = self.degrees[u] - 1.0;
        self.degrees[u] = d;
        self.inv_sqrt[u] = 1.0 / (d + 1.0).sqrt();
        self.inv_deg[u] = 1.0 / (d + 1.0);
    }

    /// Clears all vectors, keeping capacity (scratch-reuse rebuild).
    pub(crate) fn clear(&mut self) {
        self.degrees.clear();
        self.inv_sqrt.clear();
        self.inv_deg.clear();
    }

    /// Appends one node's degree, deriving its normalization values.
    pub(crate) fn push_degree(&mut self, d: f64) {
        self.degrees.push(d);
        self.inv_sqrt.push(1.0 / (d + 1.0).sqrt());
        self.inv_deg.push(1.0 / (d + 1.0));
    }
}

/// Dispatches an SpMM to the exact-width specialization for common column
/// counts (feature dims, hidden widths, class counts seen in this workspace)
/// or to the runtime-width fallback otherwise.
macro_rules! dispatch_dim {
    ($self:expr, $fixed:ident, $dyn:ident, $norms:expr, $x:expr, $dim:expr, $out:expr, $rows:expr) => {
        match $dim {
            1 => $self.$fixed::<1>($norms, $x, $out, $rows),
            2 => $self.$fixed::<2>($norms, $x, $out, $rows),
            3 => $self.$fixed::<3>($norms, $x, $out, $rows),
            4 => $self.$fixed::<4>($norms, $x, $out, $rows),
            6 => $self.$fixed::<6>($norms, $x, $out, $rows),
            8 => $self.$fixed::<8>($norms, $x, $out, $rows),
            16 => $self.$fixed::<16>($norms, $x, $out, $rows),
            24 => $self.$fixed::<24>($norms, $x, $out, $rows),
            32 => $self.$fixed::<32>($norms, $x, $out, $rows),
            48 => $self.$fixed::<48>($norms, $x, $out, $rows),
            64 => $self.$fixed::<64>($norms, $x, $out, $rows),
            _ => $self.$dyn($norms, $x, $dim, $out, $rows),
        }
    };
}

/// Immutable CSR adjacency snapshot with symmetric-normalization helpers.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
}

impl Default for Csr {
    /// An empty zero-node CSR (valid scratch placeholder).
    fn default() -> Self {
        Csr {
            offsets: vec![0],
            targets: Vec::new(),
        }
    }
}

impl Csr {
    /// Builds a CSR snapshot from a graph view.
    pub fn from_view(view: &GraphView<'_>) -> Self {
        let n = view.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for u in 0..n {
            let nbrs = view.neighbors(u);
            targets.extend_from_slice(&nbrs);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR snapshot of a host graph's adjacency (the base layer the
    /// delta-CSR views apply their overrides to).
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for u in 0..n {
            targets.extend(graph.neighbors(u));
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// A copy of this CSR with the arcs `u -> v` and `v -> u` removed
    /// (absent arcs are a no-op). Neighbor order of every surviving arc is
    /// preserved, so downstream floating-point reductions stay bit-stable.
    pub fn minus_arc_pair(&self, u: NodeId, v: NodeId) -> Csr {
        let mut out = Csr {
            offsets: Vec::new(),
            targets: Vec::new(),
        };
        self.minus_arc_pair_into(u, v, &mut out);
        out
    }

    /// [`Csr::minus_arc_pair`] writing into a caller-provided scratch CSR,
    /// reusing its allocations: a bulk copy of both buffers followed by at
    /// most two in-row deletions, instead of a branch per surviving arc.
    pub fn minus_arc_pair_into(&self, u: NodeId, v: NodeId, out: &mut Csr) {
        out.offsets.clear();
        out.offsets.extend_from_slice(&self.offsets);
        out.targets.clear();
        out.targets.extend_from_slice(&self.targets);
        out.remove_arc(u, v);
        if u != v {
            out.remove_arc(v, u);
        }
    }

    /// Removes the single arc `a -> b` if present (neighbor slices are
    /// sorted, so a binary search locates it).
    fn remove_arc(&mut self, a: NodeId, b: NodeId) {
        if a + 1 >= self.offsets.len() {
            return;
        }
        let row = &self.targets[self.offsets[a]..self.offsets[a + 1]];
        if let Ok(pos) = row.binary_search(&b) {
            self.targets.remove(self.offsets[a] + pos);
            for o in &mut self.offsets[a + 1..] {
                *o -= 1;
            }
        }
    }

    /// Clears to a zero-node CSR, keeping capacity (scratch-reuse rebuild).
    pub(crate) fn reset(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.targets.clear();
    }

    /// Appends one target to the row currently under construction.
    pub(crate) fn push_target(&mut self, t: NodeId) {
        self.targets.push(t);
    }

    /// Seals the row under construction and starts the next one.
    pub(crate) fn finish_row(&mut self) {
        self.offsets.push(self.targets.len());
    }

    /// Builds a CSR snapshot directly from adjacency lists.
    pub fn from_adjacency(adj: &[Vec<NodeId>]) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::new();
        offsets.push(0);
        for nbrs in adj {
            let mut sorted = nbrs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            targets.extend_from_slice(&sorted);
            offsets.push(targets.len());
        }
        Csr { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed arcs stored (twice the undirected edge count).
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of `u` as a slice.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// Whether `(u, v)` is an arc (binary search on the neighbor slice).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Multiplies the symmetrically normalized adjacency (with self-loops)
    /// `D^{-1/2} (A + I) D^{-1/2}` against a dense feature matrix given as a
    /// row-major buffer with `dim` columns, writing into `out`.
    pub fn spmm_sym_norm(&self, x: &[f64], dim: usize, out: &mut [f64]) {
        let norms = CsrNorms::from_csr(self);
        self.spmm_sym_norm_cached(&norms, x, dim, out, None);
    }

    /// [`Csr::spmm_sym_norm`] with an explicit degree vector (without the
    /// self-loop; `+1` is applied here) and an optional output-row schedule.
    ///
    /// The explicit degrees let an induced receptive-field subgraph normalize
    /// with the *host view's* true degrees, which is what makes localized
    /// inference bit-exact. When `rows` is given, only those output rows are
    /// computed (the rest stay zero); input rows outside the schedule are
    /// still read, so callers must ensure they hold valid values.
    ///
    /// Rebuilds the normalization vectors on every call; hot paths should
    /// cache a [`CsrNorms`] and call [`Csr::spmm_sym_norm_cached`] instead.
    pub fn spmm_sym_norm_deg(
        &self,
        degrees: &[f64],
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let norms = CsrNorms::from_degrees(degrees.to_vec());
        self.spmm_sym_norm_cached(&norms, x, dim, out, rows);
    }

    /// The vectorized symmetric-normalization SpMM: per-row accumulation into
    /// an exact-width register tile (`dim` specializations for the common
    /// column counts), self-loop term split out, normalization read from a
    /// cached [`CsrNorms`]. Bit-identical to [`Csr::spmm_sym_norm_deg_ref`]:
    /// each output element is the same self-loop-first, neighbor-order
    /// accumulation chain starting from `0.0`.
    pub fn spmm_sym_norm_cached(
        &self,
        norms: &CsrNorms,
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = self.num_nodes();
        assert_eq!(norms.len(), n, "spmm: degree vector size mismatch");
        assert_eq!(x.len(), n * dim, "spmm: input size mismatch");
        assert_eq!(out.len(), n * dim, "spmm: output size mismatch");
        if rows.is_some() {
            // scheduled calls leave unscheduled rows zero, like the reference
            out.fill(0.0);
        }
        dispatch_dim!(self, sym_rows, sym_rows_dyn, norms, x, dim, out, rows)
    }

    /// Scalar reference implementation of [`Csr::spmm_sym_norm_deg`] (the
    /// loop the vectorized kernel replaced). Retained for the
    /// kernel-equivalence sweeps and the `bench_kernels` baseline.
    pub fn spmm_sym_norm_deg_ref(
        &self,
        degrees: &[f64],
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = self.num_nodes();
        assert_eq!(degrees.len(), n, "spmm: degree vector size mismatch");
        assert_eq!(x.len(), n * dim, "spmm: input size mismatch");
        assert_eq!(out.len(), n * dim, "spmm: output size mismatch");
        let inv_sqrt: Vec<f64> = degrees.iter().map(|d| 1.0 / (d + 1.0).sqrt()).collect();
        out.fill(0.0);
        let mut row = |u: usize| {
            let du = inv_sqrt[u];
            // self-loop contribution
            for c in 0..dim {
                out[u * dim + c] += du * du * x[u * dim + c];
            }
            for &v in self.neighbors(u) {
                let w = du * inv_sqrt[v];
                for c in 0..dim {
                    out[u * dim + c] += w * x[v * dim + c];
                }
            }
        };
        match rows {
            None => (0..n).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }

    /// Multiplies the row-normalized adjacency with self-loops
    /// `D^{-1} (A + I)` against a dense matrix (APPNP's propagation operator).
    pub fn spmm_row_norm(&self, x: &[f64], dim: usize, out: &mut [f64]) {
        let norms = CsrNorms::from_csr(self);
        self.spmm_row_norm_cached(&norms, x, dim, out, None);
    }

    /// [`Csr::spmm_row_norm`] with an explicit degree vector and an optional
    /// output-row schedule; see [`Csr::spmm_sym_norm_deg`] for the contract.
    pub fn spmm_row_norm_deg(
        &self,
        degrees: &[f64],
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let norms = CsrNorms::from_degrees(degrees.to_vec());
        self.spmm_row_norm_cached(&norms, x, dim, out, rows);
    }

    /// The vectorized row-normalization SpMM; see
    /// [`Csr::spmm_sym_norm_cached`] for the layout and exactness contract
    /// (pinned against [`Csr::spmm_row_norm_deg_ref`]).
    pub fn spmm_row_norm_cached(
        &self,
        norms: &CsrNorms,
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = self.num_nodes();
        assert_eq!(norms.len(), n, "spmm: degree vector size mismatch");
        assert_eq!(x.len(), n * dim, "spmm: input size mismatch");
        assert_eq!(out.len(), n * dim, "spmm: output size mismatch");
        if rows.is_some() {
            out.fill(0.0);
        }
        dispatch_dim!(self, row_rows, row_rows_dyn, norms, x, dim, out, rows)
    }

    /// Scalar reference implementation of [`Csr::spmm_row_norm_deg`];
    /// retained for the kernel-equivalence sweeps and `bench_kernels`.
    pub fn spmm_row_norm_deg_ref(
        &self,
        degrees: &[f64],
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let n = self.num_nodes();
        assert_eq!(degrees.len(), n, "spmm: degree vector size mismatch");
        assert_eq!(x.len(), n * dim, "spmm: input size mismatch");
        assert_eq!(out.len(), n * dim, "spmm: output size mismatch");
        out.fill(0.0);
        let mut row = |u: usize| {
            let d = degrees[u] + 1.0;
            let w = 1.0 / d;
            for c in 0..dim {
                out[u * dim + c] += w * x[u * dim + c];
            }
            for &v in self.neighbors(u) {
                for c in 0..dim {
                    out[u * dim + c] += w * x[v * dim + c];
                }
            }
        };
        match rows {
            None => (0..n).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }

    /// Symmetric-normalization rows at a compile-time column width: the
    /// accumulator tile lives in registers and every inner loop has an exact
    /// trip count, which is what lets the compiler vectorize across columns.
    fn sym_rows<const D: usize>(
        &self,
        norms: &CsrNorms,
        x: &[f64],
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let inv_sqrt = norms.inv_sqrt();
        let mut row = |u: usize| {
            let du = inv_sqrt[u];
            let w0 = du * du;
            let xu = &x[u * D..u * D + D];
            let mut acc = [0.0f64; D];
            for c in 0..D {
                acc[c] += w0 * xu[c];
            }
            for &v in self.neighbors(u) {
                let w = du * inv_sqrt[v];
                let xv = &x[v * D..v * D + D];
                for c in 0..D {
                    acc[c] += w * xv[c];
                }
            }
            out[u * D..u * D + D].copy_from_slice(&acc);
        };
        match rows {
            None => (0..self.num_nodes()).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }

    /// Runtime-width fallback of [`Csr::sym_rows`] (uncommon `dim`s); still
    /// slice-based and allocation-free.
    fn sym_rows_dyn(
        &self,
        norms: &CsrNorms,
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let inv_sqrt = norms.inv_sqrt();
        let mut row = |u: usize| {
            let du = inv_sqrt[u];
            let w0 = du * du;
            let xu = &x[u * dim..(u + 1) * dim];
            let orow = &mut out[u * dim..(u + 1) * dim];
            orow.fill(0.0);
            for c in 0..dim {
                orow[c] += w0 * xu[c];
            }
            for &v in self.neighbors(u) {
                let w = du * inv_sqrt[v];
                let xv = &x[v * dim..(v + 1) * dim];
                for c in 0..dim {
                    orow[c] += w * xv[c];
                }
            }
        };
        match rows {
            None => (0..self.num_nodes()).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }

    /// Row-normalization rows at a compile-time column width; see
    /// [`Csr::sym_rows`].
    fn row_rows<const D: usize>(
        &self,
        norms: &CsrNorms,
        x: &[f64],
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let inv_deg = norms.inv_deg();
        let mut row = |u: usize| {
            let w = inv_deg[u];
            let xu = &x[u * D..u * D + D];
            let mut acc = [0.0f64; D];
            for c in 0..D {
                acc[c] += w * xu[c];
            }
            for &v in self.neighbors(u) {
                let xv = &x[v * D..v * D + D];
                for c in 0..D {
                    acc[c] += w * xv[c];
                }
            }
            out[u * D..u * D + D].copy_from_slice(&acc);
        };
        match rows {
            None => (0..self.num_nodes()).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }

    /// Runtime-width fallback of [`Csr::row_rows`].
    fn row_rows_dyn(
        &self,
        norms: &CsrNorms,
        x: &[f64],
        dim: usize,
        out: &mut [f64],
        rows: Option<&[usize]>,
    ) {
        let inv_deg = norms.inv_deg();
        let mut row = |u: usize| {
            let w = inv_deg[u];
            let xu = &x[u * dim..(u + 1) * dim];
            let orow = &mut out[u * dim..(u + 1) * dim];
            orow.fill(0.0);
            for c in 0..dim {
                orow[c] += w * xu[c];
            }
            for &v in self.neighbors(u) {
                let xv = &x[v * dim..(v + 1) * dim];
                for c in 0..dim {
                    orow[c] += w * xv[c];
                }
            }
        };
        match rows {
            None => (0..self.num_nodes()).for_each(&mut row),
            Some(rows) => rows.iter().copied().for_each(&mut row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn star() -> Graph {
        // node 0 connected to 1, 2, 3
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g
    }

    #[test]
    fn csr_matches_view() {
        let g = star();
        let view = GraphView::full(&g);
        let csr = Csr::from_view(&view);
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_arcs(), 6);
        assert_eq!(csr.neighbors(0), &[1, 2, 3]);
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.degree(0), 3);
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(1, 2));
    }

    #[test]
    fn from_adjacency_sorts_and_dedups() {
        let csr = Csr::from_adjacency(&[vec![2, 1, 1], vec![0], vec![0]]);
        assert_eq!(csr.neighbors(0), &[1, 2]);
        assert_eq!(csr.num_arcs(), 4);
    }

    #[test]
    fn sym_norm_spmm_of_constant_vector() {
        // For x = all-ones and symmetric normalization with self-loops,
        // row u gets sum over {u} ∪ N(u) of 1/sqrt(d_u d_v).
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![1.0; 4];
        let mut out = vec![0.0; 4];
        csr.spmm_sym_norm(&x, 1, &mut out);
        let d0 = 4.0_f64;
        let dleaf = 2.0_f64;
        let expected0 = 1.0 / d0 + 3.0 / (d0.sqrt() * dleaf.sqrt());
        assert!((out[0] - expected0).abs() < 1e-12);
        let expected_leaf = 1.0 / dleaf + 1.0 / (d0.sqrt() * dleaf.sqrt());
        assert!((out[1] - expected_leaf).abs() < 1e-12);
    }

    #[test]
    fn row_norm_spmm_preserves_constant_vectors() {
        // Row-normalized propagation of a constant vector stays constant.
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![2.5; 4];
        let mut out = vec![0.0; 4];
        csr.spmm_row_norm(&x, 1, &mut out);
        for v in out {
            assert!((v - 2.5).abs() < 1e-12);
        }
    }

    #[test]
    fn spmm_respects_multiple_columns() {
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![
            1.0, 0.0, //
            0.0, 1.0, //
            0.0, 1.0, //
            0.0, 1.0,
        ];
        let mut out = vec![0.0; 8];
        csr.spmm_row_norm(&x, 2, &mut out);
        // node 1 row: (x1 + x0) / 2 = (0+1, 1+0)/2
        assert!((out[2] - 0.5).abs() < 1e-12);
        assert!((out[3] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "spmm")]
    fn spmm_panics_on_bad_dims() {
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let x = vec![0.0; 3];
        let mut out = vec![0.0; 4];
        csr.spmm_row_norm(&x, 1, &mut out);
    }

    #[test]
    fn norms_match_reference_expressions_and_decrement() {
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let mut norms = CsrNorms::from_csr(&csr);
        assert_eq!(norms.len(), 4);
        for u in 0..4 {
            let d = csr.degree(u) as f64;
            assert_eq!(norms.degrees()[u].to_bits(), d.to_bits());
            assert_eq!(
                norms.inv_sqrt()[u].to_bits(),
                (1.0 / (d + 1.0).sqrt()).to_bits()
            );
            assert_eq!(norms.inv_deg()[u].to_bits(), (1.0 / (d + 1.0)).to_bits());
        }
        norms.decrement(0);
        // after removing one incident edge, node 0 must normalize exactly like
        // a freshly built vector over the reduced degree
        let fresh = CsrNorms::from_degrees(vec![2.0]);
        assert_eq!(norms.inv_sqrt()[0].to_bits(), fresh.inv_sqrt()[0].to_bits());
        assert_eq!(norms.inv_deg()[0].to_bits(), fresh.inv_deg()[0].to_bits());
    }

    #[test]
    fn minus_arc_pair_into_reuses_scratch_and_matches() {
        let g = star();
        let csr = Csr::from_view(&GraphView::full(&g));
        let mut scratch = Csr::default();
        for &(u, v) in &[(0, 2), (2, 0), (1, 3), (7, 7), (0, 0)] {
            csr.minus_arc_pair_into(u, v, &mut scratch);
            assert_eq!(scratch, csr.minus_arc_pair(u, v), "arc ({u},{v})");
        }
        // reuse after a real removal: scratch must fully rebuild
        csr.minus_arc_pair_into(0, 1, &mut scratch);
        assert_eq!(scratch.neighbors(0), &[2, 3]);
        assert_eq!(scratch.neighbors(1), &[] as &[NodeId]);
        csr.minus_arc_pair_into(9, 9, &mut scratch);
        assert_eq!(scratch, csr);
    }

    /// Random connected graph + random feature buffer, deterministic in seed.
    fn random_case(seed: u64, dim: usize) -> (Csr, Vec<f64>, Vec<f64>) {
        use crate::generators::{ensure_connected, stochastic_block_model};
        let (mut g, _) = stochastic_block_model(&[9, 8, 7], 0.35, 0.08, seed);
        ensure_connected(&mut g, seed.wrapping_add(5));
        let csr = Csr::from_view(&GraphView::full(&g));
        let n = csr.num_nodes();
        let degrees: Vec<f64> = (0..n).map(|u| csr.degree(u) as f64).collect();
        let mut rng = rcw_linalg::Rng::seed_from_u64(seed ^ ((dim as u64) << 4));
        let x: Vec<f64> = (0..n * dim)
            .map(|_| {
                if rng.gen_bool(0.1) {
                    0.0
                } else {
                    rng.gen_range(-1.5..=1.5)
                }
            })
            .collect();
        (csr, degrees, x)
    }

    #[test]
    fn vectorized_spmm_is_bit_exact_vs_scalar_reference() {
        // Sweep every specialized width, the runtime fallback, and scheduled
        // row subsets; outputs must match the scalar reference to the bit.
        for seed in 0u64..3 {
            for &dim in &[1usize, 2, 3, 4, 5, 6, 7, 8, 9, 12, 16, 24, 33] {
                let (csr, degrees, x) = random_case(seed, dim);
                let n = csr.num_nodes();
                let norms = CsrNorms::from_degrees(degrees.clone());
                let subset: Vec<usize> = (0..n).step_by(3).collect();
                let mut fast = vec![f64::NAN; n * dim];
                let mut slow = vec![f64::NAN; n * dim];
                for rows in [None, Some(subset.as_slice())] {
                    csr.spmm_sym_norm_cached(&norms, &x, dim, &mut fast, rows);
                    csr.spmm_sym_norm_deg_ref(&degrees, &x, dim, &mut slow, rows);
                    // rows=None overwrites every element, so comparing the
                    // full buffers also proves full-coverage writes
                    let pairs = fast.iter().zip(&slow);
                    for (i, (f, s)) in pairs.enumerate() {
                        assert_eq!(
                            f.to_bits(),
                            s.to_bits(),
                            "sym dim {dim} seed {seed} rows {:?} elem {i}: {f} != {s}",
                            rows.map(<[usize]>::len)
                        );
                    }
                    csr.spmm_row_norm_cached(&norms, &x, dim, &mut fast, rows);
                    csr.spmm_row_norm_deg_ref(&degrees, &x, dim, &mut slow, rows);
                    for (i, (f, s)) in fast.iter().zip(&slow).enumerate() {
                        assert_eq!(
                            f.to_bits(),
                            s.to_bits(),
                            "row dim {dim} seed {seed} elem {i}: {f} != {s}"
                        );
                    }
                }
                // the _deg compatibility entry points route through the
                // vectorized kernel and must agree too
                csr.spmm_sym_norm_deg(&degrees, &x, dim, &mut fast, None);
                csr.spmm_sym_norm_deg_ref(&degrees, &x, dim, &mut slow, None);
                assert_eq!(
                    fast.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                    slow.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }
}
