//! Greedy test-case shrinking for seed-sweep failures.
//!
//! The property sweeps (`RCW_REPAIR_SEEDS`, `RCW_LEMMA_SEEDS`) fail with a
//! whole generated graph as the counterexample; debugging wants the smallest
//! graph that still fails. [`shrink_graph`] minimizes greedily: drop one edge
//! at a time, then prune isolated nodes, repeating to a fixpoint — every kept
//! reduction must still satisfy the caller's failure predicate, so the result
//! is a locally-minimal failing case, reproducible because the procedure is
//! deterministic (edge order is the graph's own iteration order).
//!
//! The predicate decides everything: shrinking never assumes why the case
//! fails, only *that* it fails. Predicates that retrain a model per candidate
//! are fine — shrinking only runs on the (rare) failure path.

use crate::graph::{Graph, NodeId};

/// Greedily minimizes `graph` while `fails` keeps returning `true`.
///
/// Returns `graph` unchanged if it does not fail to begin with. Node removal
/// renumbers ids above the removed node (only isolated nodes are removed, so
/// no edge is silently dropped); predicates must therefore derive any node
/// references from the candidate graph itself rather than captured ids.
pub fn shrink_graph(graph: &Graph, fails: &dyn Fn(&Graph) -> bool) -> Graph {
    let mut best = graph.clone();
    if !fails(&best) {
        return best;
    }
    loop {
        let mut reduced = false;
        for (u, v) in best.edge_vec() {
            let mut candidate = best.clone();
            candidate.remove_edge(u, v);
            if fails(&candidate) {
                best = candidate;
                reduced = true;
            }
        }
        // Edges first, isolated nodes second: dropping edges is what isolates
        // nodes, so this order converges with fewer passes.
        let mut v = best.num_nodes();
        while v > 0 {
            v -= 1;
            if best.num_nodes() <= 1 || best.degree(v) != 0 {
                continue;
            }
            let candidate = without_node(&best, v);
            if fails(&candidate) {
                best = candidate;
                reduced = true;
            }
        }
        if !reduced {
            return best;
        }
    }
}

/// A compact, panic-message-friendly description of a (shrunk) graph.
pub fn describe_graph(g: &Graph) -> String {
    format!(
        "{} nodes, {} edges {:?}, labels {:?}",
        g.num_nodes(),
        g.num_edges(),
        g.edge_vec(),
        g.labels_vec(),
    )
}

/// The graph without node `victim`, ids above it shifted down by one;
/// features and labels carried over.
fn without_node(g: &Graph, victim: NodeId) -> Graph {
    let mut out = Graph::new();
    for v in 0..g.num_nodes() {
        if v == victim {
            continue;
        }
        let id = out.add_node(g.features(v).to_vec());
        if let Some(label) = g.label(v) {
            out.set_label(id, label);
        }
    }
    let map = |v: NodeId| if v > victim { v - 1 } else { v };
    for (u, v) in g.edges() {
        if u != victim && v != victim {
            out.add_edge(map(u), map(v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::with_nodes(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1);
        }
        g
    }

    #[test]
    fn non_failing_graph_is_untouched() {
        let g = path_graph(5);
        let shrunk = shrink_graph(&g, &|_| false);
        assert_eq!(shrunk.num_edges(), g.num_edges());
        assert_eq!(shrunk.num_nodes(), g.num_nodes());
    }

    #[test]
    fn shrinks_to_the_one_load_bearing_edge() {
        // Failure = "some node has degree >= 1 on both endpoints of an edge
        // whose endpoints share a label parity" — concretely, any edge at
        // all. Minimal failing case: one edge, two nodes.
        let g = path_graph(8);
        let shrunk = shrink_graph(&g, &|c| c.num_edges() >= 1);
        assert_eq!(shrunk.num_edges(), 1);
        assert_eq!(shrunk.num_nodes(), 2);
    }

    #[test]
    fn shrink_respects_a_count_predicate() {
        let g = path_graph(10);
        let shrunk = shrink_graph(&g, &|c| c.num_edges() >= 3);
        assert_eq!(shrunk.num_edges(), 3, "locally minimal at the threshold");
        assert!(shrunk.num_nodes() <= 6, "isolated nodes pruned");
    }

    #[test]
    fn node_removal_carries_features_and_labels() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        for v in 0..4 {
            g.set_features(v, vec![v as f64]);
            g.set_label(v, v % 2);
        }
        // Nodes 2 and 3 are isolated; the predicate only needs the edge.
        let shrunk = shrink_graph(&g, &|c| c.has_edge(0, 1));
        assert_eq!(shrunk.num_nodes(), 2);
        assert_eq!(shrunk.features(0), &[0.0]);
        assert_eq!(shrunk.features(1), &[1.0]);
        assert_eq!(shrunk.label(0), Some(0));
        assert_eq!(shrunk.label(1), Some(1));
        assert!(!describe_graph(&shrunk).is_empty());
    }
}
