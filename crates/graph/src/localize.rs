//! Localized inference support: receptive-field extraction and forward-pass
//! scheduling.
//!
//! For an L-round message-passing model, `M(v, G~)` depends only on the L-hop
//! ball around `v` *under the evaluated view*. [`Locality`] extracts that
//! ball: a BFS under the view, an induced CSR with an order-preserving node
//! remap, the *true view degrees* of every ball node (so normalization at the
//! ball boundary matches the full graph bit for bit), and a per-hop-distance
//! schedule. The schedule exploits a second identity: after round `r` of `L`,
//! only nodes within `L - r` hops of `v` can still influence `v`'s output, so
//! each successive round computes a shrinking prefix of rows — the final
//! round touches exactly one.
//!
//! [`ForwardCtx`] is the compute-graph handle the GNN forward kernels consume:
//! either a whole view (every row active in every round) or a [`Locality`].
//! Exactness argument: by induction over rounds, a node at distance `d` from
//! `v` has a bit-identical round-`r` value whenever `d <= L - r` — its
//! neighbors are all inside the ball, its degree is the true view degree, and
//! the order-preserving remap keeps every floating-point reduction in the
//! same order as the full-graph pass. At `r = L` that leaves exactly `v`.

use crate::csr::{Csr, CsrNorms};
use crate::graph::NodeId;
use crate::view::GraphView;

/// Row schedule of a localized forward pass: ball nodes ordered by hop
/// distance from the center, with prefix counts per distance. The order
/// vector is packed — each successive round reads a contiguous prefix, so
/// scheduled kernels stream rows sequentially.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Local node indices sorted by (distance, index).
    order: Vec<usize>,
    /// `prefix[d]` = number of ball nodes at distance `<= d`.
    prefix: Vec<usize>,
}

impl Schedule {
    /// Rows whose values must be computed when `remaining` message-passing
    /// rounds follow the current one. `None` means "all rows".
    fn active_rows(&self, remaining: usize) -> Option<&[usize]> {
        if remaining + 1 >= self.prefix.len() {
            return None;
        }
        Some(&self.order[..self.prefix[remaining]])
    }
}

/// Reusable working memory for [`Locality::rebuild`]: the visited set, the
/// neighbor-list arena, and the BFS frontiers. One scratch serves any number
/// of sequential rebuilds; after warm-up, ball extraction performs no heap
/// allocations.
#[derive(Debug, Default)]
pub struct BallScratch {
    /// `(node, distance)` pairs in discovery order, sorted by node at the end.
    visited: Vec<(NodeId, u32)>,
    /// Per-expanded-node neighbor-list spans into `arena`: `(node, start, end)`.
    spans: Vec<(NodeId, u32, u32)>,
    /// All fetched neighbor lists, back to back.
    arena: Vec<NodeId>,
    frontier: Vec<NodeId>,
    next: Vec<NodeId>,
    /// Per-host-node visit stamp: `stamp[v] == epoch` iff `v` is in the
    /// current ball. O(1) membership without clearing between rebuilds.
    stamp: Vec<u64>,
    /// Local ball index of stamped nodes (valid only where `stamp` matches).
    local: Vec<u32>,
    epoch: u64,
}

/// The receptive field of one node under one view: the BFS ball, its induced
/// CSR (order-preserving remap), true view degrees with their cached
/// normalization vectors, and the row schedule.
#[derive(Clone, Debug, Default)]
pub struct Locality {
    /// Ball nodes as host-graph ids, ascending. Local index = position.
    nodes: Vec<NodeId>,
    /// Local index of the center node.
    center: usize,
    /// Induced adjacency over the ball, in local indices, packed so each
    /// row's neighbor slice is contiguous and rows are laid out in local
    /// index order.
    csr: Csr,
    /// True degree of each ball node *under the view* (not the induced
    /// degree, which is truncated at the ball boundary), with cached
    /// `1/sqrt(d+1)` / `1/(d+1)` for the SpMM kernels.
    norms: CsrNorms,
    schedule: Schedule,
}

/// Scratch for [`Locality::minus_edge_ctx`]: one single-removal CSR/norm
/// variant, rebuilt in place per candidate edge.
#[derive(Debug, Default)]
pub struct BallVariant {
    csr: Csr,
    norms: CsrNorms,
}

impl Locality {
    /// Extracts the `hops`-hop receptive field of `center` under `view`.
    ///
    /// # Panics
    /// Panics if `center` is not a valid node of the view.
    pub fn build(view: &GraphView<'_>, center: NodeId, hops: usize) -> Locality {
        let mut out = Locality::default();
        let mut scratch = BallScratch::default();
        out.rebuild(view, center, hops, &mut scratch);
        out
    }

    /// [`Locality::build`] into `self`, reusing both `self`'s buffers and the
    /// caller's [`BallScratch`]. The BFS walks the view in the exact same
    /// discovery order as `build` always has (frontier in discovery order,
    /// neighbors ascending), so the resulting ball, remap, degrees, and
    /// schedule are identical — only the allocations are gone: neighbor lists
    /// land in one arena, the visited set is an epoch-stamped array (O(1)
    /// membership, no clearing between rebuilds), and the induced CSR and
    /// normalization vectors are rebuilt in place.
    ///
    /// # Panics
    /// Panics if `center` is not a valid node of the view.
    pub fn rebuild(
        &mut self,
        view: &GraphView<'_>,
        center: NodeId,
        hops: usize,
        scratch: &mut BallScratch,
    ) {
        let n = view.num_nodes();
        assert!(center < n, "Locality::build: invalid center node {center}");
        let BallScratch {
            visited,
            spans,
            arena,
            frontier,
            next,
            stamp,
            local,
            epoch,
        } = scratch;
        visited.clear();
        spans.clear();
        arena.clear();
        frontier.clear();
        if stamp.len() < n {
            stamp.resize(n, 0);
            local.resize(n, 0);
        }
        *epoch += 1;
        let e = *epoch;

        stamp[center] = e;
        visited.push((center, 0));
        frontier.push(center);
        for d in 1..=hops as u32 {
            if frontier.is_empty() || visited.len() == n {
                break;
            }
            next.clear();
            for &u in frontier.iter() {
                let start = arena.len() as u32;
                view.neighbors_into(u, arena);
                let end = arena.len() as u32;
                spans.push((u, start, end));
                for &v in &arena[start as usize..end as usize] {
                    if stamp[v] != e {
                        stamp[v] = e;
                        visited.push((v, d));
                        next.push(v);
                    }
                }
            }
            std::mem::swap(frontier, next);
        }

        // Ball nodes ascending; the remap is therefore order-preserving,
        // which keeps neighbor reductions in the same floating-point order as
        // the full pass.
        visited.sort_unstable_by_key(|t| t.0);
        self.nodes.clear();
        self.nodes.extend(visited.iter().map(|&(u, _)| u));
        for (i, &u) in self.nodes.iter().enumerate() {
            local[u] = i as u32;
        }
        spans.sort_unstable_by_key(|t| t.0);
        self.csr.reset();
        self.norms.clear();
        for &u in &self.nodes {
            // nodes expanded by the BFS already have their neighbor list in
            // the arena; boundary nodes fetch theirs now
            let (start, end) = match spans.binary_search_by_key(&u, |t| t.0) {
                Ok(i) => (spans[i].1, spans[i].2),
                Err(_) => {
                    let start = arena.len() as u32;
                    view.neighbors_into(u, arena);
                    (start, arena.len() as u32)
                }
            };
            let nbrs = &arena[start as usize..end as usize];
            self.norms.push_degree(nbrs.len() as f64);
            for &v in nbrs {
                if stamp[v] == e {
                    self.csr.push_target(local[v] as usize);
                }
            }
            self.csr.finish_row();
        }
        self.center = local[center] as usize;

        // Schedule: local indices grouped by distance, ascending within each
        // group, packed into one prefix-addressed vector.
        let max_d = visited.iter().map(|&(_, d)| d).max().unwrap_or(0);
        self.schedule.order.clear();
        self.schedule.prefix.clear();
        for d in 0..=max_d {
            self.schedule
                .order
                .extend(visited.iter().enumerate().filter_map(|(i, &(_, dd))| {
                    if dd == d {
                        Some(i)
                    } else {
                        None
                    }
                }));
            self.schedule.prefix.push(self.schedule.order.len());
        }
    }

    /// Multi-center variant of [`Locality::rebuild`]: the union `hops`-hop
    /// receptive field of `centers` under `view`, for batched inference over
    /// several nodes of the same view. Every center seeds the BFS at distance
    /// 0 (duplicates collapse via the visit stamp), so each ball node's
    /// recorded distance is its *minimum* distance to any center. The node
    /// remap stays order-preserving (ascending host ids), degrees are the
    /// true view degrees, and the schedule's final round computes exactly the
    /// center rows.
    ///
    /// Bit-exactness: the single-ball induction applies per center — a node
    /// at distance `d` from center `c` satisfies `min-dist <= d`, so the
    /// schedule keeps it active for at least as many rounds as `c`'s own ball
    /// would, and ascending-id reduction order plus true view degrees make
    /// every computed row identical to the full pass. Each center's output
    /// row therefore equals both its single-ball row and its full-pass row.
    ///
    /// `self.center` is set to the first center's local index; use
    /// [`Locality::local_index`] to address the others.
    ///
    /// # Panics
    /// Panics if `centers` is empty or contains an invalid node.
    pub fn rebuild_multi(
        &mut self,
        view: &GraphView<'_>,
        centers: &[NodeId],
        hops: usize,
        scratch: &mut BallScratch,
    ) {
        let n = view.num_nodes();
        assert!(!centers.is_empty(), "Locality::rebuild_multi: no centers");
        let BallScratch {
            visited,
            spans,
            arena,
            frontier,
            next,
            stamp,
            local,
            epoch,
        } = scratch;
        visited.clear();
        spans.clear();
        arena.clear();
        frontier.clear();
        if stamp.len() < n {
            stamp.resize(n, 0);
            local.resize(n, 0);
        }
        *epoch += 1;
        let e = *epoch;

        for &c in centers {
            assert!(c < n, "Locality::rebuild_multi: invalid center node {c}");
            if stamp[c] != e {
                stamp[c] = e;
                visited.push((c, 0));
                frontier.push(c);
            }
        }
        for d in 1..=hops as u32 {
            if frontier.is_empty() || visited.len() == n {
                break;
            }
            next.clear();
            for &u in frontier.iter() {
                let start = arena.len() as u32;
                view.neighbors_into(u, arena);
                let end = arena.len() as u32;
                spans.push((u, start, end));
                for &v in &arena[start as usize..end as usize] {
                    if stamp[v] != e {
                        stamp[v] = e;
                        visited.push((v, d));
                        next.push(v);
                    }
                }
            }
            std::mem::swap(frontier, next);
        }

        visited.sort_unstable_by_key(|t| t.0);
        self.nodes.clear();
        self.nodes.extend(visited.iter().map(|&(u, _)| u));
        for (i, &u) in self.nodes.iter().enumerate() {
            local[u] = i as u32;
        }
        spans.sort_unstable_by_key(|t| t.0);
        self.csr.reset();
        self.norms.clear();
        for &u in &self.nodes {
            let (start, end) = match spans.binary_search_by_key(&u, |t| t.0) {
                Ok(i) => (spans[i].1, spans[i].2),
                Err(_) => {
                    let start = arena.len() as u32;
                    view.neighbors_into(u, arena);
                    (start, arena.len() as u32)
                }
            };
            let nbrs = &arena[start as usize..end as usize];
            self.norms.push_degree(nbrs.len() as f64);
            for &v in nbrs {
                if stamp[v] == e {
                    self.csr.push_target(local[v] as usize);
                }
            }
            self.csr.finish_row();
        }
        self.center = local[centers[0]] as usize;

        let max_d = visited.iter().map(|&(_, d)| d).max().unwrap_or(0);
        self.schedule.order.clear();
        self.schedule.prefix.clear();
        for d in 0..=max_d {
            self.schedule
                .order
                .extend(visited.iter().enumerate().filter_map(|(i, &(_, dd))| {
                    if dd == d {
                        Some(i)
                    } else {
                        None
                    }
                }));
            self.schedule.prefix.push(self.schedule.order.len());
        }
    }

    /// Ball nodes as host-graph ids, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Local ball index of host node `v`, if it lies inside the ball.
    pub fn local_index(&self, v: NodeId) -> Option<usize> {
        self.nodes.binary_search(&v).ok()
    }

    /// Whether host node `v` lies inside the ball.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// A variant of this ball with one view-visible edge `(a, b)` removed:
    /// the same node set and row schedule, the `(a, b)` arcs dropped from the
    /// induced CSR, and the true degrees of in-ball endpoints decremented.
    /// An edge that does not touch the ball yields a plain clone.
    ///
    /// Sound for *removals only*: deleting an edge can only lengthen BFS
    /// distances, so this ball stays a superset of the variant view's true
    /// receptive field and the shared distance schedule stays conservative —
    /// a forward pass over the variant is bit-exact against a pass over
    /// `Locality::build` of the variant view (same reduction orders, same
    /// true degrees). The caller must pass an edge that is visible in the
    /// view the ball was built from; removing an absent edge would corrupt
    /// the recorded degrees.
    pub fn minus_edge(&self, a: NodeId, b: NodeId) -> Locality {
        let la = self.nodes.binary_search(&a).ok();
        let lb = self.nodes.binary_search(&b).ok();
        let mut out = self.clone();
        if la.is_none() && lb.is_none() {
            return out;
        }
        if let Some(i) = la {
            out.norms.decrement(i);
        }
        if let Some(j) = lb {
            out.norms.decrement(j);
        }
        if let (Some(i), Some(j)) = (la, lb) {
            out.csr = out.csr.minus_arc_pair(i, j);
        }
        out
    }

    /// The zero-allocation counterpart of [`Locality::minus_edge`]: builds
    /// the single-removal variant into the caller's [`BallVariant`] scratch
    /// (bulk-copying CSR and norms, then applying the at-most-two arc
    /// deletions and degree decrements) and returns a [`ForwardCtx`] over it
    /// that shares this ball's row schedule. Same soundness contract as
    /// `minus_edge`.
    pub fn minus_edge_ctx<'a>(
        &'a self,
        a: NodeId,
        b: NodeId,
        scratch: &'a mut BallVariant,
    ) -> ForwardCtx<'a> {
        let la = self.nodes.binary_search(&a).ok();
        let lb = self.nodes.binary_search(&b).ok();
        if la.is_none() && lb.is_none() {
            return self.forward_ctx();
        }
        scratch.norms.clone_from(&self.norms);
        if let Some(i) = la {
            scratch.norms.decrement(i);
        }
        if let Some(j) = lb {
            scratch.norms.decrement(j);
        }
        if let (Some(i), Some(j)) = (la, lb) {
            self.csr.minus_arc_pair_into(i, j, &mut scratch.csr);
        } else {
            scratch.csr.clone_from(&self.csr);
        }
        ForwardCtx {
            csr: &scratch.csr,
            norms: NormSource::Cached(&scratch.norms),
            schedule: Some(&self.schedule),
        }
    }

    /// Local index of the center node.
    pub fn center_index(&self) -> usize {
        self.center
    }

    /// Number of ball nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A receptive field is never empty (it contains the center).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The induced CSR, in local indices.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// True view degrees of the ball nodes.
    pub fn degrees(&self) -> &[f64] {
        self.norms.degrees()
    }

    /// The cached normalization vectors over the true view degrees.
    pub fn norms(&self) -> &CsrNorms {
        &self.norms
    }

    /// The compute-graph handle for the forward kernels.
    pub fn forward_ctx(&self) -> ForwardCtx<'_> {
        ForwardCtx {
            csr: &self.csr,
            norms: NormSource::Cached(&self.norms),
            schedule: Some(&self.schedule),
        }
    }
}

/// Where a [`ForwardCtx`] takes its normalization values from: a cached
/// [`CsrNorms`] (the fast path) or a bare degree slice, for callers that only
/// have degrees (normalization vectors are then rebuilt per SpMM call).
#[derive(Clone, Copy, Debug)]
enum NormSource<'a> {
    Cached(&'a CsrNorms),
    Degrees(&'a [f64]),
}

/// A compute graph for one GNN forward pass: adjacency, true degrees (with
/// cached normalization when available), and an optional row schedule
/// (present only for localized evaluation).
#[derive(Clone, Copy, Debug)]
pub struct ForwardCtx<'a> {
    csr: &'a Csr,
    norms: NormSource<'a>,
    schedule: Option<&'a Schedule>,
}

impl<'a> ForwardCtx<'a> {
    /// A full compute graph: every row is active in every round.
    pub fn full(csr: &'a Csr, degrees: &'a [f64]) -> Self {
        assert_eq!(
            csr.num_nodes(),
            degrees.len(),
            "ForwardCtx::full: degree vector size mismatch"
        );
        ForwardCtx {
            csr,
            norms: NormSource::Degrees(degrees),
            schedule: None,
        }
    }

    /// A full compute graph over pre-computed normalization vectors (the
    /// fast path: SpMM calls skip the per-call normalization rebuild).
    pub fn full_with_norms(csr: &'a Csr, norms: &'a CsrNorms) -> Self {
        assert_eq!(
            csr.num_nodes(),
            norms.len(),
            "ForwardCtx::full: degree vector size mismatch"
        );
        ForwardCtx {
            csr,
            norms: NormSource::Cached(norms),
            schedule: None,
        }
    }

    /// The adjacency.
    pub fn csr(&self) -> &'a Csr {
        self.csr
    }

    /// True per-node degrees under the evaluated view (no self-loops).
    pub fn degrees(&self) -> &'a [f64] {
        match self.norms {
            NormSource::Cached(n) => n.degrees(),
            NormSource::Degrees(d) => d,
        }
    }

    /// Number of nodes (rows) in the compute graph.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Rows whose values the current round must compute, given how many
    /// message-passing rounds follow it. `None` means every row. Rounds count
    /// down: the first of `L` rounds has `remaining = L - 1`, the last `0`.
    pub fn active_rows(&self, remaining: usize) -> Option<&'a [usize]> {
        self.schedule.and_then(|s| s.active_rows(remaining))
    }

    /// Symmetric-normalization SpMM over this compute graph, routed through
    /// the cached normalization vectors when present; see
    /// [`Csr::spmm_sym_norm_cached`].
    pub fn spmm_sym(&self, x: &[f64], dim: usize, out: &mut [f64], rows: Option<&[usize]>) {
        match self.norms {
            NormSource::Cached(n) => self.csr.spmm_sym_norm_cached(n, x, dim, out, rows),
            NormSource::Degrees(d) => self.csr.spmm_sym_norm_deg(d, x, dim, out, rows),
        }
    }

    /// Row-normalization SpMM over this compute graph; see
    /// [`Csr::spmm_row_norm_cached`].
    pub fn spmm_row(&self, x: &[f64], dim: usize, out: &mut [f64], rows: Option<&[usize]>) {
        match self.norms {
            NormSource::Cached(n) => self.csr.spmm_row_norm_cached(n, x, dim, out, rows),
            NormSource::Degrees(d) => self.csr.spmm_row_norm_deg(d, x, dim, out, rows),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeSet;
    use crate::graph::Graph;

    fn path5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for uv in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            g.add_edge(uv.0, uv.1);
        }
        g
    }

    #[test]
    fn ball_of_radius_two_on_a_path() {
        let g = path5();
        let view = GraphView::full(&g);
        let local = Locality::build(&view, 2, 2);
        assert_eq!(local.nodes(), &[0, 1, 2, 3, 4]);
        assert_eq!(local.center_index(), 2);
        assert_eq!(local.degrees(), &[1.0, 2.0, 2.0, 2.0, 1.0]);
        let local = Locality::build(&view, 0, 2);
        assert_eq!(local.nodes(), &[0, 1, 2]);
        // node 2 sits on the boundary: its induced degree is truncated but
        // its recorded degree is the true view degree
        assert_eq!(local.csr().degree(2), 1);
        assert_eq!(local.degrees()[2], 2.0);
    }

    #[test]
    fn ball_respects_view_overrides() {
        let g = path5();
        let mut view = GraphView::full(&g);
        view.remove_edges(&EdgeSet::from_iter([(1, 2)]));
        view.add_edges(&EdgeSet::from_iter([(0, 4)]));
        let local = Locality::build(&view, 0, 2);
        // 0 -> {1, 4} -> {3}; the cut (1,2) stops the walk to 2
        assert_eq!(local.nodes(), &[0, 1, 3, 4]);
        assert_eq!(local.degrees(), &[2.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn isolated_center_yields_singleton_ball() {
        let g = path5();
        let view = GraphView::restricted_to(&g, &EdgeSet::new());
        let local = Locality::build(&view, 3, 4);
        assert_eq!(local.nodes(), &[3]);
        assert_eq!(local.center_index(), 0);
        assert_eq!(local.degrees(), &[0.0]);
        assert_eq!(local.csr().num_arcs(), 0);
    }

    #[test]
    fn schedule_shrinks_toward_the_center() {
        let g = path5();
        let view = GraphView::full(&g);
        let local = Locality::build(&view, 0, 3);
        let ctx = local.forward_ctx();
        // last round: only the center row
        assert_eq!(ctx.active_rows(0), Some(&[0usize][..]));
        // one round before: center + 1-hop
        let one = ctx.active_rows(1).unwrap();
        assert_eq!(one, &[0, 1]);
        // at or beyond the radius every row is active
        assert_eq!(ctx.active_rows(3), None);
        assert_eq!(ctx.active_rows(99), None);
    }

    #[test]
    fn rebuild_reuses_scratch_and_matches_fresh_build() {
        use crate::generators::{ensure_connected, stochastic_block_model};
        let mut scratch = BallScratch::default();
        let mut reused = Locality::default();
        for seed in 0u64..4 {
            let (mut g, _) = stochastic_block_model(&[7, 7, 7], 0.4, 0.08, seed);
            ensure_connected(&mut g, seed);
            let mut view = GraphView::full(&g);
            if seed % 2 == 0 {
                view.remove_edges(&EdgeSet::from_iter([(0, 1), (2, 9)]));
                view.add_edges(&EdgeSet::from_iter([(0, 20)]));
            }
            for center in [0usize, 9, 20] {
                for hops in [0usize, 1, 2, 4] {
                    let fresh = Locality::build(&view, center, hops);
                    reused.rebuild(&view, center, hops, &mut scratch);
                    assert_eq!(reused.nodes(), fresh.nodes());
                    assert_eq!(reused.center_index(), fresh.center_index());
                    assert_eq!(reused.csr(), fresh.csr());
                    assert_eq!(reused.degrees(), fresh.degrees());
                    assert_eq!(reused.schedule.order, fresh.schedule.order);
                    assert_eq!(reused.schedule.prefix, fresh.schedule.prefix);
                }
            }
        }
    }

    #[test]
    fn multi_center_ball_unions_single_balls() {
        use crate::generators::{ensure_connected, stochastic_block_model};
        let mut scratch = BallScratch::default();
        let mut multi = Locality::default();
        let mut single = Locality::default();
        for seed in 0u64..4 {
            let (mut g, _) = stochastic_block_model(&[7, 7, 7], 0.4, 0.08, seed);
            ensure_connected(&mut g, seed);
            let mut view = GraphView::full(&g);
            if seed % 2 == 0 {
                view.remove_edges(&EdgeSet::from_iter([(0, 1), (2, 9)]));
            }
            for hops in [0usize, 1, 2, 4] {
                let centers = [0usize, 9, 20];
                multi.rebuild_multi(&view, &centers, hops, &mut scratch);
                // node set is the union of the single balls
                let mut union: Vec<NodeId> = Vec::new();
                for &c in &centers {
                    single.rebuild(&view, c, hops, &mut scratch);
                    union.extend_from_slice(single.nodes());
                }
                union.sort_unstable();
                union.dedup();
                assert_eq!(multi.nodes(), &union[..], "seed {seed} hops {hops}");
                // every center is addressable and sits at distance 0
                assert_eq!(multi.schedule.prefix[0], centers.len());
                for &c in &centers {
                    let i = multi.local_index(c).expect("center in ball");
                    assert!(multi.schedule.order[..centers.len()].contains(&i));
                }
                assert_eq!(multi.center_index(), multi.local_index(0).unwrap());
                // degrees are true view degrees (same rule as single balls)
                for &c in &centers {
                    single.rebuild(&view, c, hops, &mut scratch);
                    let si = single.local_index(c).unwrap();
                    let mi = multi.local_index(c).unwrap();
                    assert_eq!(multi.degrees()[mi], single.degrees()[si]);
                }
            }
            // single-center multi build is identical to the single build
            multi.rebuild_multi(&view, &[9], 2, &mut scratch);
            single.rebuild(&view, 9, 2, &mut scratch);
            assert_eq!(multi.nodes(), single.nodes());
            assert_eq!(multi.center_index(), single.center_index());
            assert_eq!(multi.csr(), single.csr());
            assert_eq!(multi.degrees(), single.degrees());
            assert_eq!(multi.schedule.order, single.schedule.order);
            assert_eq!(multi.schedule.prefix, single.schedule.prefix);
            // duplicate centers collapse
            multi.rebuild_multi(&view, &[9, 9, 9], 2, &mut scratch);
            assert_eq!(multi.nodes(), single.nodes());
            assert_eq!(multi.schedule.prefix[0], 1);
        }
    }

    #[test]
    fn minus_edge_ctx_matches_minus_edge() {
        let g = path5();
        let view = GraphView::full(&g);
        let local = Locality::build(&view, 2, 2);
        let mut scratch = BallVariant::default();
        // in-ball edge, boundary-crossing edge, and fully-outside pair
        for &(a, b) in &[(1, 2), (2, 3), (0, 1), (3, 4), (90, 91)] {
            let cloned = local.minus_edge(a, b);
            let ctx = local.minus_edge_ctx(a, b, &mut scratch);
            assert_eq!(ctx.csr(), cloned.csr(), "edge ({a},{b})");
            assert_eq!(ctx.degrees(), cloned.degrees(), "edge ({a},{b})");
            for r in 0..4 {
                assert_eq!(
                    ctx.active_rows(r),
                    cloned.forward_ctx().active_rows(r),
                    "edge ({a},{b}) round {r}"
                );
            }
        }
    }

    #[test]
    fn full_ctx_has_no_schedule() {
        let g = path5();
        let csr = Csr::from_view(&GraphView::full(&g));
        let degrees: Vec<f64> = (0..5).map(|u| csr.degree(u) as f64).collect();
        let ctx = ForwardCtx::full(&csr, &degrees);
        assert_eq!(ctx.num_nodes(), 5);
        assert_eq!(ctx.active_rows(0), None);
    }
}
