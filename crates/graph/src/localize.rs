//! Localized inference support: receptive-field extraction and forward-pass
//! scheduling.
//!
//! For an L-round message-passing model, `M(v, G~)` depends only on the L-hop
//! ball around `v` *under the evaluated view*. [`Locality`] extracts that
//! ball: a BFS under the view, an induced CSR with an order-preserving node
//! remap, the *true view degrees* of every ball node (so normalization at the
//! ball boundary matches the full graph bit for bit), and a per-hop-distance
//! schedule. The schedule exploits a second identity: after round `r` of `L`,
//! only nodes within `L - r` hops of `v` can still influence `v`'s output, so
//! each successive round computes a shrinking prefix of rows — the final
//! round touches exactly one.
//!
//! [`ForwardCtx`] is the compute-graph handle the GNN forward kernels consume:
//! either a whole view (every row active in every round) or a [`Locality`].
//! Exactness argument: by induction over rounds, a node at distance `d` from
//! `v` has a bit-identical round-`r` value whenever `d <= L - r` — its
//! neighbors are all inside the ball, its degree is the true view degree, and
//! the order-preserving remap keeps every floating-point reduction in the
//! same order as the full-graph pass. At `r = L` that leaves exactly `v`.

use crate::csr::Csr;
use crate::graph::NodeId;
use crate::view::GraphView;
use std::collections::BTreeMap;

/// Row schedule of a localized forward pass: ball nodes ordered by hop
/// distance from the center, with prefix counts per distance.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Local node indices sorted by (distance, index).
    order: Vec<usize>,
    /// `prefix[d]` = number of ball nodes at distance `<= d`.
    prefix: Vec<usize>,
}

impl Schedule {
    /// Rows whose values must be computed when `remaining` message-passing
    /// rounds follow the current one. `None` means "all rows".
    fn active_rows(&self, remaining: usize) -> Option<&[usize]> {
        if remaining + 1 >= self.prefix.len() {
            return None;
        }
        Some(&self.order[..self.prefix[remaining]])
    }
}

/// The receptive field of one node under one view: the BFS ball, its induced
/// CSR (order-preserving remap), true view degrees, and the row schedule.
#[derive(Clone, Debug)]
pub struct Locality {
    /// Ball nodes as host-graph ids, ascending. Local index = position.
    nodes: Vec<NodeId>,
    /// Local index of the center node.
    center: usize,
    /// Induced adjacency over the ball, in local indices.
    csr: Csr,
    /// True degree of each ball node *under the view* (not the induced
    /// degree, which is truncated at the ball boundary).
    degrees: Vec<f64>,
    schedule: Schedule,
}

impl Locality {
    /// Extracts the `hops`-hop receptive field of `center` under `view`.
    ///
    /// # Panics
    /// Panics if `center` is not a valid node of the view.
    pub fn build(view: &GraphView<'_>, center: NodeId, hops: usize) -> Locality {
        let n = view.num_nodes();
        assert!(center < n, "Locality::build: invalid center node {center}");

        // BFS under the view, caching neighbor lists for the induced build.
        let mut dist: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut nbrs_cache: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        dist.insert(center, 0);
        let mut frontier = vec![center];
        for d in 1..=hops {
            if frontier.is_empty() || dist.len() == n {
                break;
            }
            let mut next = Vec::new();
            for &u in &frontier {
                let nbrs = view.neighbors(u);
                for &v in &nbrs {
                    if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                        e.insert(d);
                        next.push(v);
                    }
                }
                nbrs_cache.insert(u, nbrs);
            }
            frontier = next;
        }

        // Ball nodes ascending (BTreeMap keys are sorted); the remap is
        // therefore order-preserving, which keeps neighbor reductions in the
        // same floating-point order as the full pass.
        let nodes: Vec<NodeId> = dist.keys().copied().collect();
        let m = nodes.len();
        let mut offsets = Vec::with_capacity(m + 1);
        let mut targets = Vec::new();
        let mut degrees = Vec::with_capacity(m);
        offsets.push(0);
        for &u in &nodes {
            let nbrs = nbrs_cache.remove(&u).unwrap_or_else(|| view.neighbors(u));
            degrees.push(nbrs.len() as f64);
            for v in nbrs {
                if let Ok(j) = nodes.binary_search(&v) {
                    targets.push(j);
                }
            }
            offsets.push(targets.len());
        }
        let csr = Csr::from_raw_parts(offsets, targets);
        let center_idx = nodes.binary_search(&center).expect("center in ball");

        // Schedule: local indices bucketed by distance.
        let max_d = dist.values().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_d + 1];
        for (i, u) in nodes.iter().enumerate() {
            buckets[dist[u]].push(i);
        }
        let mut order = Vec::with_capacity(m);
        let mut prefix = Vec::with_capacity(max_d + 1);
        for bucket in buckets {
            order.extend(bucket);
            prefix.push(order.len());
        }

        Locality {
            nodes,
            center: center_idx,
            csr,
            degrees,
            schedule: Schedule { order, prefix },
        }
    }

    /// Ball nodes as host-graph ids, ascending.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Whether host node `v` lies inside the ball.
    pub fn contains(&self, v: NodeId) -> bool {
        self.nodes.binary_search(&v).is_ok()
    }

    /// A variant of this ball with one view-visible edge `(a, b)` removed:
    /// the same node set and row schedule, the `(a, b)` arcs dropped from the
    /// induced CSR, and the true degrees of in-ball endpoints decremented.
    /// An edge that does not touch the ball yields a plain clone.
    ///
    /// Sound for *removals only*: deleting an edge can only lengthen BFS
    /// distances, so this ball stays a superset of the variant view's true
    /// receptive field and the shared distance schedule stays conservative —
    /// a forward pass over the variant is bit-exact against a pass over
    /// `Locality::build` of the variant view (same reduction orders, same
    /// true degrees). The caller must pass an edge that is visible in the
    /// view the ball was built from; removing an absent edge would corrupt
    /// the recorded degrees.
    pub fn minus_edge(&self, a: NodeId, b: NodeId) -> Locality {
        let la = self.nodes.binary_search(&a).ok();
        let lb = self.nodes.binary_search(&b).ok();
        let mut out = self.clone();
        if la.is_none() && lb.is_none() {
            return out;
        }
        if let Some(i) = la {
            out.degrees[i] -= 1.0;
        }
        if let Some(j) = lb {
            out.degrees[j] -= 1.0;
        }
        if let (Some(i), Some(j)) = (la, lb) {
            out.csr = out.csr.minus_arc_pair(i, j);
        }
        out
    }

    /// Local index of the center node.
    pub fn center_index(&self) -> usize {
        self.center
    }

    /// Number of ball nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A receptive field is never empty (it contains the center).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The induced CSR, in local indices.
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// True view degrees of the ball nodes.
    pub fn degrees(&self) -> &[f64] {
        &self.degrees
    }

    /// The compute-graph handle for the forward kernels.
    pub fn forward_ctx(&self) -> ForwardCtx<'_> {
        ForwardCtx {
            csr: &self.csr,
            degrees: &self.degrees,
            schedule: Some(&self.schedule),
        }
    }
}

/// A compute graph for one GNN forward pass: adjacency, true degrees, and an
/// optional row schedule (present only for localized evaluation).
#[derive(Clone, Copy, Debug)]
pub struct ForwardCtx<'a> {
    csr: &'a Csr,
    degrees: &'a [f64],
    schedule: Option<&'a Schedule>,
}

impl<'a> ForwardCtx<'a> {
    /// A full compute graph: every row is active in every round.
    pub fn full(csr: &'a Csr, degrees: &'a [f64]) -> Self {
        assert_eq!(
            csr.num_nodes(),
            degrees.len(),
            "ForwardCtx::full: degree vector size mismatch"
        );
        ForwardCtx {
            csr,
            degrees,
            schedule: None,
        }
    }

    /// The adjacency.
    pub fn csr(&self) -> &'a Csr {
        self.csr
    }

    /// True per-node degrees under the evaluated view (no self-loops).
    pub fn degrees(&self) -> &'a [f64] {
        self.degrees
    }

    /// Number of nodes (rows) in the compute graph.
    pub fn num_nodes(&self) -> usize {
        self.csr.num_nodes()
    }

    /// Rows whose values the current round must compute, given how many
    /// message-passing rounds follow it. `None` means every row. Rounds count
    /// down: the first of `L` rounds has `remaining = L - 1`, the last `0`.
    pub fn active_rows(&self, remaining: usize) -> Option<&'a [usize]> {
        self.schedule.and_then(|s| s.active_rows(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edge::EdgeSet;
    use crate::graph::Graph;

    fn path5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for uv in [(0, 1), (1, 2), (2, 3), (3, 4)] {
            g.add_edge(uv.0, uv.1);
        }
        g
    }

    #[test]
    fn ball_of_radius_two_on_a_path() {
        let g = path5();
        let view = GraphView::full(&g);
        let local = Locality::build(&view, 2, 2);
        assert_eq!(local.nodes(), &[0, 1, 2, 3, 4]);
        assert_eq!(local.center_index(), 2);
        assert_eq!(local.degrees(), &[1.0, 2.0, 2.0, 2.0, 1.0]);
        let local = Locality::build(&view, 0, 2);
        assert_eq!(local.nodes(), &[0, 1, 2]);
        // node 2 sits on the boundary: its induced degree is truncated but
        // its recorded degree is the true view degree
        assert_eq!(local.csr().degree(2), 1);
        assert_eq!(local.degrees()[2], 2.0);
    }

    #[test]
    fn ball_respects_view_overrides() {
        let g = path5();
        let mut view = GraphView::full(&g);
        view.remove_edges(&EdgeSet::from_iter([(1, 2)]));
        view.add_edges(&EdgeSet::from_iter([(0, 4)]));
        let local = Locality::build(&view, 0, 2);
        // 0 -> {1, 4} -> {3}; the cut (1,2) stops the walk to 2
        assert_eq!(local.nodes(), &[0, 1, 3, 4]);
        assert_eq!(local.degrees(), &[2.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn isolated_center_yields_singleton_ball() {
        let g = path5();
        let view = GraphView::restricted_to(&g, &EdgeSet::new());
        let local = Locality::build(&view, 3, 4);
        assert_eq!(local.nodes(), &[3]);
        assert_eq!(local.center_index(), 0);
        assert_eq!(local.degrees(), &[0.0]);
        assert_eq!(local.csr().num_arcs(), 0);
    }

    #[test]
    fn schedule_shrinks_toward_the_center() {
        let g = path5();
        let view = GraphView::full(&g);
        let local = Locality::build(&view, 0, 3);
        let ctx = local.forward_ctx();
        // last round: only the center row
        assert_eq!(ctx.active_rows(0), Some(&[0usize][..]));
        // one round before: center + 1-hop
        let one = ctx.active_rows(1).unwrap();
        assert_eq!(one, &[0, 1]);
        // at or beyond the radius every row is active
        assert_eq!(ctx.active_rows(3), None);
        assert_eq!(ctx.active_rows(99), None);
    }

    #[test]
    fn full_ctx_has_no_schedule() {
        let g = path5();
        let csr = Csr::from_view(&GraphView::full(&g));
        let degrees: Vec<f64> = (0..5).map(|u| csr.degree(u) as f64).collect();
        let ctx = ForwardCtx::full(&csr, &degrees);
        assert_eq!(ctx.num_nodes(), 5);
        assert_eq!(ctx.active_rows(0), None);
    }
}
