//! Graph traversal utilities: BFS, connected components, k-hop neighborhoods.
//!
//! Used by the edge-cut partitioner (k-hop border replication), the witness
//! generators (localized candidate search), and the dataset generators
//! (connectivity checks).

use crate::graph::{Graph, NodeId};
use std::collections::{BTreeSet, VecDeque};

/// Breadth-first search from `source`; returns the hop distance of every
/// reachable node (unreachable nodes get `None`).
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; graph.num_nodes()];
    if !graph.contains_node(source) {
        return dist;
    }
    dist[source] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].unwrap();
        for v in graph.neighbors(u) {
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// All nodes within `k` hops of `source` (including `source` itself).
pub fn k_hop_neighborhood(graph: &Graph, source: NodeId, k: usize) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    if !graph.contains_node(source) {
        return out;
    }
    out.insert(source);
    let mut frontier = vec![source];
    for _ in 0..k {
        let mut next = Vec::new();
        for &u in &frontier {
            for v in graph.neighbors(u) {
                if out.insert(v) {
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

/// All nodes within `k` hops of *any* of the given sources.
pub fn k_hop_neighborhood_multi(graph: &Graph, sources: &[NodeId], k: usize) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    for &s in sources {
        out.extend(k_hop_neighborhood(graph, s, k));
    }
    out
}

/// Connected components; returns a component id per node (ids are dense,
/// ordered by the smallest node id in the component).
pub fn connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.num_nodes();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        comp[start] = next;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for v in graph.neighbors(u) {
                if comp[v] == usize::MAX {
                    comp[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn num_components(graph: &Graph) -> usize {
    connected_components(graph)
        .into_iter()
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// Whether the graph is connected (an empty graph counts as connected).
pub fn is_connected(graph: &Graph) -> bool {
    num_components(graph) <= 1
}

/// Shortest-path length (in hops) between two nodes, if any.
pub fn shortest_path_len(graph: &Graph, from: NodeId, to: NodeId) -> Option<usize> {
    if !graph.contains_node(from) || !graph.contains_node(to) {
        return None;
    }
    bfs_distances(graph, from)[to]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        let mut g = Graph::with_nodes(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
    }

    #[test]
    fn bfs_unreachable_is_none() {
        let g = two_triangles();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[3], None);
        assert_eq!(d[2], Some(1));
    }

    #[test]
    fn k_hop_neighborhoods() {
        let mut g = Graph::with_nodes(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        assert_eq!(
            k_hop_neighborhood(&g, 0, 2).into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(k_hop_neighborhood(&g, 0, 0).len(), 1);
        let multi = k_hop_neighborhood_multi(&g, &[0, 4], 1);
        assert_eq!(multi.into_iter().collect::<Vec<_>>(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn components() {
        let g = two_triangles();
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[5]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(num_components(&g), 2);
        assert!(!is_connected(&g));
    }

    #[test]
    fn empty_graph_is_connected() {
        let g = Graph::new();
        assert!(is_connected(&g));
        assert_eq!(num_components(&g), 0);
    }

    #[test]
    fn shortest_paths() {
        let g = two_triangles();
        assert_eq!(shortest_path_len(&g, 0, 2), Some(1));
        assert_eq!(shortest_path_len(&g, 0, 5), None);
        assert_eq!(shortest_path_len(&g, 0, 0), Some(0));
        assert_eq!(shortest_path_len(&g, 0, 100), None);
    }
}
