//! Attributed undirected graphs.
//!
//! [`Graph`] is the central data structure of the workspace: a connected (or
//! not) undirected graph whose nodes carry a feature vector and an optional
//! class label. Adjacency is stored as per-node ordered sets so that all
//! iteration orders are deterministic, which the paper requires of the whole
//! pipeline ("fixed and deterministic GNN").

use crate::csr::{Csr, CsrNorms};
use crate::edge::{norm_edge, Edge};
use rcw_linalg::Matrix;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Node identifier. Nodes are always densely numbered `0..n`.
pub type NodeId = usize;

/// Process-wide epoch counter. Every structural or feature mutation of any
/// graph draws a fresh value, so an epoch observed on one graph is never
/// reused by a different mutation event — epoch equality is a sound cache
/// key across graphs (clones share the epoch of the state they copied).
static GRAPH_EPOCH: AtomicU64 = AtomicU64::new(1);

fn fresh_epoch() -> u64 {
    GRAPH_EPOCH.fetch_add(1, Ordering::Relaxed)
}

/// An attributed undirected graph.
#[derive(Clone, Debug)]
pub struct Graph {
    adjacency: Vec<BTreeSet<NodeId>>,
    features: Vec<Vec<f64>>,
    labels: Vec<Option<usize>>,
    num_edges: usize,
    /// Lazily built host CSR, shared by every [`crate::view::GraphView`] over
    /// this graph (their delta-CSR base layer). Structural mutation clears it.
    csr_cache: OnceLock<Csr>,
    /// Lazily built normalization vectors over the host degrees, cleared
    /// together with the CSR cache on structural mutation.
    norms_cache: OnceLock<CsrNorms>,
    /// Structural version: changes whenever the node set or edge set changes.
    epoch: u64,
    /// Feature version: changes whenever node features (or the node set)
    /// change. Edge flips leave it untouched, so feature-only caches (e.g.
    /// APPNP local logits) survive disturbances.
    feature_epoch: u64,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::with_nodes(0)
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Creates a graph with `n` nodes, no edges, and empty feature vectors.
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            adjacency: vec![BTreeSet::new(); n],
            features: vec![Vec::new(); n],
            labels: vec![None; n],
            num_edges: 0,
            csr_cache: OnceLock::new(),
            norms_cache: OnceLock::new(),
            epoch: fresh_epoch(),
            feature_epoch: fresh_epoch(),
        }
    }

    /// The graph's structural epoch. Two graphs reporting the same epoch have
    /// identical node and edge sets (a clone keeps the epoch of the state it
    /// copied; every mutation draws a globally fresh value), which makes the
    /// epoch a sound key for structure-dependent caches such as partitions,
    /// k-hop neighborhoods, and PPR rows.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The graph's feature epoch: like [`Graph::epoch`] but only advanced by
    /// feature (and node-set) changes. Edge disturbances leave it untouched.
    #[inline]
    pub fn feature_epoch(&self) -> u64 {
        self.feature_epoch
    }

    /// The host adjacency as a CSR snapshot, built on first use and reused by
    /// every view, worker, and expand–verify round until the graph mutates.
    pub fn csr(&self) -> &Csr {
        self.csr_cache.get_or_init(|| Csr::from_graph(self))
    }

    /// Cached SpMM normalization vectors over the host degrees, built on
    /// first use and reused (alongside [`Graph::csr`]) by every unmasked-view
    /// forward pass until the graph mutates structurally.
    pub fn norms(&self) -> &CsrNorms {
        self.norms_cache
            .get_or_init(|| CsrNorms::from_csr(self.csr()))
    }

    /// Adds a node with the given features, returning its id.
    pub fn add_node(&mut self, features: Vec<f64>) -> NodeId {
        self.csr_cache.take();
        self.norms_cache.take();
        self.epoch = fresh_epoch();
        self.feature_epoch = fresh_epoch();
        self.adjacency.push(BTreeSet::new());
        self.features.push(features);
        self.labels.push(None);
        self.adjacency.len() - 1
    }

    /// Adds a node with features and a label, returning its id.
    pub fn add_labeled_node(&mut self, features: Vec<f64>, label: usize) -> NodeId {
        let id = self.add_node(features);
        self.labels[id] = Some(label);
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total size `|V| + |E|` as used by the paper's normalized GED.
    #[inline]
    pub fn size(&self) -> usize {
        self.num_nodes() + self.num_edges()
    }

    /// Returns `true` if the node id is valid.
    #[inline]
    pub fn contains_node(&self, v: NodeId) -> bool {
        v < self.adjacency.len()
    }

    /// Inserts the undirected edge `(u, v)`. Self-loops are rejected.
    /// Returns `true` if the edge was newly inserted.
    ///
    /// # Panics
    /// Panics if either endpoint is not a valid node.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(self.contains_node(u), "add_edge: node {u} does not exist");
        assert!(self.contains_node(v), "add_edge: node {v} does not exist");
        if u == v {
            return false;
        }
        let inserted = self.adjacency[u].insert(v);
        if inserted {
            self.adjacency[v].insert(u);
            self.num_edges += 1;
            self.csr_cache.take();
            self.norms_cache.take();
            self.epoch = fresh_epoch();
        }
        inserted
    }

    /// Removes the undirected edge `(u, v)`. Returns `true` if it existed.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if !self.contains_node(u) || !self.contains_node(v) {
            return false;
        }
        let removed = self.adjacency[u].remove(&v);
        if removed {
            self.adjacency[v].remove(&u);
            self.num_edges -= 1;
            self.csr_cache.take();
            self.norms_cache.take();
            self.epoch = fresh_epoch();
        }
        removed
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.contains_node(u) && self.adjacency[u].contains(&v)
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v].len()
    }

    /// Maximum node degree (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Average degree `2|E| / |V|` (0.0 for an empty graph).
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Ordered iterator over the neighbors of `v`.
    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency[v].iter().copied()
    }

    /// Collects the neighbors of `v` into a vector.
    pub fn neighbors_vec(&self, v: NodeId) -> Vec<NodeId> {
        self.adjacency[v].iter().copied().collect()
    }

    /// Iterator over all undirected edges, each reported once with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.adjacency
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// Collects all edges into a vector.
    pub fn edge_vec(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.num_nodes()
    }

    /// Feature vector of node `v`.
    #[inline]
    pub fn features(&self, v: NodeId) -> &[f64] {
        &self.features[v]
    }

    /// Sets the feature vector of node `v`.
    pub fn set_features(&mut self, v: NodeId, features: Vec<f64>) {
        self.features[v] = features;
        self.feature_epoch = fresh_epoch();
    }

    /// Label of node `v` (if assigned).
    #[inline]
    pub fn label(&self, v: NodeId) -> Option<usize> {
        self.labels[v]
    }

    /// Sets the label of node `v`.
    pub fn set_label(&mut self, v: NodeId, label: usize) {
        self.labels[v] = Some(label);
    }

    /// Clears the label of node `v`.
    pub fn clear_label(&mut self, v: NodeId) {
        self.labels[v] = None;
    }

    /// Number of features per node, taken from node 0 (0 if empty graph).
    pub fn feature_dim(&self) -> usize {
        self.features.first().map(|f| f.len()).unwrap_or(0)
    }

    /// Number of distinct labels present (max label + 1), or 0 if unlabeled.
    pub fn num_classes(&self) -> usize {
        self.labels
            .iter()
            .flatten()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0)
    }

    /// Node feature matrix `X` of shape `|V| x F`.
    ///
    /// Nodes whose feature vector is shorter than the maximum dimension are
    /// zero-padded, so graphs built incrementally stay usable.
    pub fn feature_matrix(&self) -> Matrix {
        let n = self.num_nodes();
        let f = self.features.iter().map(|x| x.len()).max().unwrap_or(0);
        let mut m = Matrix::zeros(n, f);
        for (i, feats) in self.features.iter().enumerate() {
            for (j, &x) in feats.iter().enumerate() {
                m.set(i, j, x);
            }
        }
        m
    }

    /// Dense adjacency matrix `A` of shape `|V| x |V|`.
    pub fn adjacency_matrix(&self) -> Matrix {
        let n = self.num_nodes();
        let mut a = Matrix::zeros(n, n);
        for (u, v) in self.edges() {
            a.set(u, v, 1.0);
            a.set(v, u, 1.0);
        }
        a
    }

    /// Degree vector (one entry per node).
    pub fn degree_vector(&self) -> Vec<f64> {
        self.adjacency.iter().map(|s| s.len() as f64).collect()
    }

    /// Labels of all nodes as a vector.
    pub fn labels_vec(&self) -> Vec<Option<usize>> {
        self.labels.clone()
    }

    /// Nodes carrying a specific label.
    pub fn nodes_with_label(&self, label: usize) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, l)| (*l == Some(label)).then_some(i))
            .collect()
    }

    /// All node pairs `(u, v)` with `u < v` that are *not* edges (candidate
    /// insertions for disturbances).
    pub fn non_edges(&self) -> Vec<Edge> {
        let n = self.num_nodes();
        let mut out = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if !self.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Applies a set of edge flips, returning a new graph. An existing edge in
    /// the flip set is removed; a missing one is inserted.
    pub fn flip_edges(&self, flips: &[Edge]) -> Graph {
        let mut g = self.clone();
        g.flip_edges_in_place(flips);
        g
    }

    /// Applies a set of edge flips to this graph in place — the mutation-epoch
    /// entry point for disturbances that actually land on the host graph
    /// rather than on a view. Returns the number of pairs that changed state.
    /// Invalid pairs are ignored.
    pub fn flip_edges_in_place(&mut self, flips: &[Edge]) -> usize {
        let mut applied = 0;
        for &(u, v) in flips {
            let (u, v) = norm_edge(u, v);
            if u == v || !self.contains_node(u) || !self.contains_node(v) {
                continue;
            }
            let changed = if self.has_edge(u, v) {
                self.remove_edge(u, v)
            } else {
                self.add_edge(u, v)
            };
            if changed {
                applied += 1;
            }
        }
        applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g
    }

    #[test]
    fn add_and_remove_edges() {
        let mut g = Graph::with_nodes(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0), "duplicate edge must not double count");
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(1, 0));
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut g = Graph::with_nodes(2);
        assert!(!g.add_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn degrees_and_size() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.avg_degree(), 2.0);
        assert_eq!(g.size(), 6);
    }

    #[test]
    fn edges_are_sorted_and_unique() {
        let g = triangle();
        assert_eq!(g.edge_vec(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn labels_and_features() {
        let mut g = Graph::new();
        let a = g.add_labeled_node(vec![1.0, 0.0], 1);
        let b = g.add_node(vec![0.0, 1.0]);
        g.set_label(b, 0);
        assert_eq!(g.label(a), Some(1));
        assert_eq!(g.label(b), Some(0));
        assert_eq!(g.num_classes(), 2);
        assert_eq!(g.feature_dim(), 2);
        assert_eq!(g.nodes_with_label(1), vec![a]);
        g.clear_label(b);
        assert_eq!(g.label(b), None);
    }

    #[test]
    fn feature_matrix_pads_ragged_rows() {
        let mut g = Graph::new();
        g.add_node(vec![1.0, 2.0, 3.0]);
        g.add_node(vec![4.0]);
        let x = g.feature_matrix();
        assert_eq!(x.shape(), (2, 3));
        assert_eq!(x.row(1), &[4.0, 0.0, 0.0]);
    }

    #[test]
    fn adjacency_matrix_is_symmetric() {
        let g = triangle();
        let a = g.adjacency_matrix();
        for u in 0..3 {
            for v in 0..3 {
                assert_eq!(a.get(u, v), a.get(v, u));
                assert_eq!(a.get(u, v) == 1.0, g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn non_edges_complement_edges() {
        let g = triangle();
        assert!(g.non_edges().is_empty());
        let mut g2 = Graph::with_nodes(3);
        g2.add_edge(0, 1);
        assert_eq!(g2.non_edges(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn flip_edges_inserts_and_removes() {
        let g = triangle();
        let flipped = g.flip_edges(&[(0, 1)]);
        assert!(!flipped.has_edge(0, 1));
        assert_eq!(flipped.num_edges(), 2);
        let mut g2 = Graph::with_nodes(3);
        g2.add_edge(0, 1);
        let f2 = g2.flip_edges(&[(1, 2), (0, 1)]);
        assert!(f2.has_edge(1, 2));
        assert!(!f2.has_edge(0, 1));
        // original untouched
        assert!(g2.has_edge(0, 1));
    }

    #[test]
    fn flip_edges_ignores_invalid_pairs() {
        let g = triangle();
        let f = g.flip_edges(&[(0, 0), (0, 99)]);
        assert_eq!(f.num_edges(), g.num_edges());
    }

    #[test]
    fn flip_edges_in_place_counts_applied_pairs() {
        let mut g = triangle();
        let applied = g.flip_edges_in_place(&[(0, 1), (0, 0), (0, 99)]);
        assert_eq!(applied, 1);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.flip_edges_in_place(&[(0, 1)]), 1, "re-insertion counts");
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn structural_epoch_advances_on_mutation_only() {
        let mut g = triangle();
        let e0 = g.epoch();
        assert_eq!(g.epoch(), e0, "reads do not advance the epoch");
        let _ = g.csr();
        assert_eq!(g.epoch(), e0, "CSR materialization is a read");
        g.add_edge(0, 1); // already present
        assert_eq!(g.epoch(), e0, "no-op insert keeps the epoch");
        g.remove_edge(1, 2);
        let e1 = g.epoch();
        assert_ne!(e1, e0);
        g.add_node(vec![1.0]);
        assert_ne!(g.epoch(), e1, "node additions are structural");
    }

    #[test]
    fn feature_epoch_is_independent_of_edge_flips() {
        let mut g = triangle();
        let f0 = g.feature_epoch();
        g.remove_edge(0, 1);
        assert_eq!(g.feature_epoch(), f0, "edge flips keep feature caches");
        g.set_features(0, vec![3.0]);
        assert_ne!(g.feature_epoch(), f0);
    }

    #[test]
    fn clones_share_epochs_until_they_diverge() {
        let g = triangle();
        let mut c = g.clone();
        assert_eq!(c.epoch(), g.epoch(), "identical content, identical epoch");
        c.remove_edge(0, 1);
        assert_ne!(c.epoch(), g.epoch());
        // fresh graphs never reuse an epoch value
        assert_ne!(Graph::with_nodes(3).epoch(), Graph::with_nodes(3).epoch());
    }
}
