//! k-disturbances and (k, b)-disturbances.
//!
//! A *k-disturbance* flips at most `k` node pairs of a graph (edge insertions
//! and removals). When applied to `G \ Gw` it must not touch witness edges.
//! A *(k, b)-disturbance* additionally limits every node to at most `b`
//! incident flips (the "local budget" that makes APPNP verification
//! tractable, §III-B of the paper).

use crate::edge::{Edge, EdgeSet};
use crate::graph::{Graph, NodeId};
use rcw_linalg::rng::{Rng, SliceRandom};
use std::collections::BTreeMap;

/// A set of node-pair flips together with the budgets it was built under.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Disturbance {
    flips: EdgeSet,
}

impl Disturbance {
    /// Creates an empty disturbance.
    pub fn new() -> Self {
        Disturbance::default()
    }

    /// Creates a disturbance from node pairs.
    pub fn from_pairs<I: IntoIterator<Item = Edge>>(pairs: I) -> Self {
        Disturbance {
            flips: EdgeSet::from_iter(pairs),
        }
    }

    /// The flipped node pairs.
    pub fn pairs(&self) -> &EdgeSet {
        &self.flips
    }

    /// Number of flips.
    pub fn len(&self) -> usize {
        self.flips.len()
    }

    /// Whether no pairs are flipped.
    pub fn is_empty(&self) -> bool {
        self.flips.is_empty()
    }

    /// Adds a pair; returns `true` if newly added.
    pub fn add(&mut self, u: NodeId, v: NodeId) -> bool {
        self.flips.insert(u, v)
    }

    /// Checks the global budget: at most `k` flips.
    pub fn respects_k(&self, k: usize) -> bool {
        self.flips.len() <= k
    }

    /// Checks the local budget: every node is incident to at most `b` flips.
    pub fn respects_local_budget(&self, b: usize) -> bool {
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (u, v) in self.flips.iter() {
            *counts.entry(u).or_insert(0) += 1;
            *counts.entry(v).or_insert(0) += 1;
        }
        counts.values().all(|&c| c <= b)
    }

    /// Checks both budgets at once, i.e. that this is a valid (k, b)-disturbance.
    pub fn is_valid_kb(&self, k: usize, b: usize) -> bool {
        self.respects_k(k) && self.respects_local_budget(b)
    }

    /// Returns `true` if none of the flipped pairs is an edge of `protected`
    /// (a disturbance on `G \ Gw` must not flip edges of `Gw`).
    pub fn avoids(&self, protected: &EdgeSet) -> bool {
        self.flips.iter().all(|(u, v)| !protected.contains(u, v))
    }

    /// Applies the disturbance to a graph, returning the disturbed graph.
    pub fn apply(&self, graph: &Graph) -> Graph {
        graph.flip_edges(&self.flips.to_vec())
    }

    /// The nodes incident to any flipped pair — the seed set of the
    /// disturbance's cache-invalidation footprint.
    pub fn touched_nodes(&self) -> std::collections::BTreeSet<NodeId> {
        self.flips.iter().flat_map(|(u, v)| [u, v]).collect()
    }
}

/// The k-hop footprint of a set of disturbances: every node within `hops` of
/// a flipped endpoint, computed on `graph` (pass the *post*-disturbance graph
/// so chained insertions are traversed). Any L-hop receptive field, candidate
/// neighborhood, or PPR row whose node set is disjoint from this footprint is
/// unaffected by the disturbance up to the usual truncation error, which is
/// what lets an engine invalidate selectively instead of flushing every cache.
pub fn disturbance_footprint(
    graph: &Graph,
    disturbances: &[Disturbance],
    hops: usize,
) -> std::collections::BTreeSet<NodeId> {
    let touched: Vec<NodeId> = disturbances
        .iter()
        .flat_map(|d| d.touched_nodes())
        .filter(|&v| graph.contains_node(v))
        .collect();
    crate::traversal::k_hop_neighborhood_multi(graph, &touched, hops)
}

/// Strategy for sampling random disturbances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisturbanceStrategy {
    /// Only remove existing edges. The paper's experiments mainly use this
    /// ("establishing new links in real networks may be expensive").
    RemovalOnly,
    /// Only insert missing edges.
    InsertionOnly,
    /// Mix removals and insertions uniformly at random.
    Mixed,
}

/// Samples a random k-disturbance over `G \ protected` using the given
/// strategy. The result respects the global budget `k` and, when `b > 0`, the
/// local budget `b`. Deterministic for a given seed.
pub fn random_disturbance(
    graph: &Graph,
    protected: &EdgeSet,
    k: usize,
    b: usize,
    strategy: DisturbanceStrategy,
    seed: u64,
) -> Disturbance {
    let mut rng = Rng::seed_from_u64(seed);
    let mut removable: Vec<Edge> = graph
        .edges()
        .filter(|&(u, v)| !protected.contains(u, v))
        .collect();
    removable.shuffle(&mut rng);

    let mut insertable: Vec<Edge> = Vec::new();
    if !matches!(strategy, DisturbanceStrategy::RemovalOnly) {
        insertable = graph
            .non_edges()
            .into_iter()
            .filter(|&(u, v)| !protected.contains(u, v))
            .collect();
        insertable.shuffle(&mut rng);
    }

    let mut d = Disturbance::new();
    let mut local: BTreeMap<NodeId, usize> = BTreeMap::new();
    let try_add =
        |d: &mut Disturbance, local: &mut BTreeMap<NodeId, usize>, u: NodeId, v: NodeId| -> bool {
            if b > 0 {
                let cu = *local.get(&u).unwrap_or(&0);
                let cv = *local.get(&v).unwrap_or(&0);
                if cu >= b || cv >= b {
                    return false;
                }
            }
            if d.add(u, v) {
                *local.entry(u).or_insert(0) += 1;
                *local.entry(v).or_insert(0) += 1;
                true
            } else {
                false
            }
        };

    let mut ri = 0;
    let mut ii = 0;
    while d.len() < k {
        let pick_removal = match strategy {
            DisturbanceStrategy::RemovalOnly => true,
            DisturbanceStrategy::InsertionOnly => false,
            DisturbanceStrategy::Mixed => rng.gen_bool(0.5),
        };
        let progressed = if pick_removal && ri < removable.len() {
            let (u, v) = removable[ri];
            ri += 1;
            try_add(&mut d, &mut local, u, v)
        } else if !pick_removal && ii < insertable.len() {
            let (u, v) = insertable[ii];
            ii += 1;
            try_add(&mut d, &mut local, u, v)
        } else if ri < removable.len() {
            let (u, v) = removable[ri];
            ri += 1;
            try_add(&mut d, &mut local, u, v)
        } else if ii < insertable.len() {
            let (u, v) = insertable[ii];
            ii += 1;
            try_add(&mut d, &mut local, u, v)
        } else {
            break;
        };
        let _ = progressed;
        if ri >= removable.len() && ii >= insertable.len() {
            break;
        }
    }
    d
}

/// Samples a random (k, b)-disturbance from an explicit candidate pool
/// instead of the whole graph. The pool is what encodes the strategy (a
/// removal-only pool simply contains no non-edges). Deterministic for a given
/// seed, and — unlike [`random_disturbance`] — a function of the pool alone:
/// two graphs that agree on the pool's neighborhood draw identical
/// disturbances, which is what lets a shard engine reproduce the full-graph
/// verifier bit-exactly.
pub fn random_disturbance_from(
    candidates: &[Edge],
    protected: &EdgeSet,
    k: usize,
    b: usize,
    seed: u64,
) -> Disturbance {
    let mut rng = Rng::seed_from_u64(seed);
    let mut pool: Vec<Edge> = candidates
        .iter()
        .copied()
        .filter(|&(u, v)| !protected.contains(u, v))
        .collect();
    pool.shuffle(&mut rng);
    let mut d = Disturbance::new();
    let mut local: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (u, v) in pool {
        if d.len() >= k {
            break;
        }
        if b > 0 {
            let cu = *local.get(&u).unwrap_or(&0);
            let cv = *local.get(&v).unwrap_or(&0);
            if cu >= b || cv >= b {
                continue;
            }
        }
        if d.add(u, v) {
            *local.entry(u).or_insert(0) += 1;
            *local.entry(v).or_insert(0) += 1;
        }
    }
    d
}

/// Enumerates *all* disturbances of exactly `j` pairs drawn from `candidates`.
/// Used by the exhaustive (NP-hard) verifier on small graphs and in tests.
/// The number of results is `C(|candidates|, j)`; callers must keep inputs small.
pub fn enumerate_disturbances(candidates: &[Edge], j: usize) -> Vec<Disturbance> {
    let mut out = Vec::new();
    let mut current: Vec<Edge> = Vec::with_capacity(j);
    fn rec(
        candidates: &[Edge],
        start: usize,
        remaining: usize,
        current: &mut Vec<Edge>,
        out: &mut Vec<Disturbance>,
    ) {
        if remaining == 0 {
            out.push(Disturbance::from_pairs(current.iter().copied()));
            return;
        }
        if candidates.len().saturating_sub(start) < remaining {
            return;
        }
        for i in start..candidates.len() {
            current.push(candidates[i]);
            rec(candidates, i + 1, remaining - 1, current, out);
            current.pop();
        }
    }
    rec(candidates, 0, j, &mut current, &mut out);
    out
}

/// Enumerates all disturbances of size `1..=k` from the candidate pairs.
pub fn enumerate_disturbances_up_to(candidates: &[Edge], k: usize) -> Vec<Disturbance> {
    (1..=k)
        .flat_map(|j| enumerate_disturbances(candidates, j))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle5() -> Graph {
        let mut g = Graph::with_nodes(5);
        for i in 0..5 {
            g.add_edge(i, (i + 1) % 5);
        }
        g
    }

    #[test]
    fn budgets() {
        let d = Disturbance::from_pairs([(0, 1), (0, 2), (0, 3)]);
        assert!(d.respects_k(3));
        assert!(!d.respects_k(2));
        assert!(d.respects_local_budget(3));
        assert!(!d.respects_local_budget(2), "node 0 has 3 incident flips");
        assert!(d.is_valid_kb(5, 3));
        assert!(!d.is_valid_kb(5, 1));
    }

    #[test]
    fn avoids_protected_edges() {
        let d = Disturbance::from_pairs([(0, 1)]);
        let protected = EdgeSet::from_iter([(1, 0)]);
        assert!(!d.avoids(&protected));
        assert!(d.avoids(&EdgeSet::from_iter([(2, 3)])));
    }

    #[test]
    fn apply_flips_pairs() {
        let g = cycle5();
        let d = Disturbance::from_pairs([(0, 1), (0, 2)]);
        let disturbed = d.apply(&g);
        assert!(!disturbed.has_edge(0, 1), "existing edge removed");
        assert!(disturbed.has_edge(0, 2), "missing pair inserted");
        assert_eq!(disturbed.num_edges(), g.num_edges());
    }

    #[test]
    fn random_removal_only_never_inserts() {
        let g = cycle5();
        let d = random_disturbance(
            &g,
            &EdgeSet::new(),
            3,
            0,
            DisturbanceStrategy::RemovalOnly,
            7,
        );
        assert!(d.len() <= 3);
        assert!(d.pairs().iter().all(|(u, v)| g.has_edge(u, v)));
    }

    #[test]
    fn random_disturbance_respects_protected_and_budget() {
        let g = cycle5();
        let protected = EdgeSet::from_iter([(0, 1), (1, 2)]);
        let d = random_disturbance(&g, &protected, 10, 1, DisturbanceStrategy::Mixed, 3);
        assert!(d.avoids(&protected));
        assert!(d.respects_local_budget(1));
    }

    #[test]
    fn random_disturbance_is_deterministic_per_seed() {
        let g = cycle5();
        let a = random_disturbance(&g, &EdgeSet::new(), 3, 0, DisturbanceStrategy::Mixed, 42);
        let b = random_disturbance(&g, &EdgeSet::new(), 3, 0, DisturbanceStrategy::Mixed, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn insertion_only_only_inserts() {
        let g = cycle5();
        let d = random_disturbance(
            &g,
            &EdgeSet::new(),
            2,
            0,
            DisturbanceStrategy::InsertionOnly,
            1,
        );
        assert!(d.pairs().iter().all(|(u, v)| !g.has_edge(u, v)));
    }

    #[test]
    fn enumeration_counts_are_binomial() {
        let candidates = vec![(0, 1), (0, 2), (1, 2), (2, 3)];
        assert_eq!(enumerate_disturbances(&candidates, 2).len(), 6);
        assert_eq!(enumerate_disturbances(&candidates, 4).len(), 1);
        assert_eq!(enumerate_disturbances(&candidates, 5).len(), 0);
        // 4 singletons + 6 pairs
        assert_eq!(enumerate_disturbances_up_to(&candidates, 2).len(), 10);
    }

    #[test]
    fn touched_nodes_are_flip_endpoints() {
        let d = Disturbance::from_pairs([(0, 1), (2, 4)]);
        let touched: Vec<_> = d.touched_nodes().into_iter().collect();
        assert_eq!(touched, vec![0, 1, 2, 4]);
        assert!(Disturbance::new().touched_nodes().is_empty());
    }

    #[test]
    fn footprint_expands_by_hops_on_the_disturbed_graph() {
        // path 0-1-2-3-4; flip (3,4) out, footprint at 1 hop from {3,4}
        let mut g = Graph::with_nodes(5);
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        let d = Disturbance::from_pairs([(3, 4)]);
        let disturbed = d.apply(&g);
        let fp = disturbance_footprint(&disturbed, std::slice::from_ref(&d), 1);
        // on the disturbed graph 4 is isolated, 3's 1-hop ball is {2,3}
        assert_eq!(fp.into_iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        let fp0 = disturbance_footprint(&disturbed, &[d], 0);
        assert_eq!(fp0.into_iter().collect::<Vec<_>>(), vec![3, 4]);
        // invalid endpoints are dropped rather than panicking
        let wild = Disturbance::from_pairs([(0, 99)]);
        let fp_w = disturbance_footprint(&g, &[wild], 1);
        assert_eq!(fp_w.into_iter().collect::<Vec<_>>(), vec![0, 1]);
    }

    #[test]
    fn enumeration_of_zero_is_single_empty() {
        let candidates = vec![(0, 1)];
        let all = enumerate_disturbances(&candidates, 0);
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }
}
