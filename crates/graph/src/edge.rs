//! Edge and edge-set primitives.
//!
//! Witness structures and disturbances are both *sets of node pairs*; the
//! paper calls a witness `Gs` "a subgraph of G" and a disturbance "a set of
//! node pairs Ek". [`EdgeSet`] is the shared representation: a sorted set of
//! normalized `(u, v)` pairs with `u < v`.

use crate::graph::NodeId;
use std::collections::BTreeSet;

/// An undirected node pair. Always stored normalized with `u <= v` inside
/// [`EdgeSet`]; free-standing tuples may appear in either order.
pub type Edge = (NodeId, NodeId);

/// Normalizes an edge so the smaller endpoint comes first.
#[inline]
pub fn norm_edge(u: NodeId, v: NodeId) -> Edge {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

/// A deterministic, ordered set of undirected edges.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeSet {
    edges: BTreeSet<Edge>,
}

impl EdgeSet {
    /// Creates an empty edge set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Inserts an edge (normalizing the order). Returns `true` if newly added.
    /// Self-loops are ignored and return `false`.
    pub fn insert(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.edges.insert(norm_edge(u, v))
    }

    /// Removes an edge. Returns `true` if it was present.
    pub fn remove(&mut self, u: NodeId, v: NodeId) -> bool {
        self.edges.remove(&norm_edge(u, v))
    }

    /// Returns `true` if the edge is in the set.
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&norm_edge(u, v))
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Ordered iterator over edges.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Collects into a vector.
    pub fn to_vec(&self) -> Vec<Edge> {
        self.edges.iter().copied().collect()
    }

    /// Set union.
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet {
            edges: self.edges.union(&other.edges).copied().collect(),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet {
            edges: self.edges.difference(&other.edges).copied().collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet {
            edges: self.edges.intersection(&other.edges).copied().collect(),
        }
    }

    /// Symmetric difference (edges in exactly one of the two sets).
    pub fn symmetric_difference(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet {
            edges: self
                .edges
                .symmetric_difference(&other.edges)
                .copied()
                .collect(),
        }
    }

    /// Extends with all edges from `other`.
    pub fn extend(&mut self, other: &EdgeSet) {
        self.edges.extend(other.edges.iter().copied());
    }

    /// The set of endpoints touched by edges in this set.
    pub fn endpoints(&self) -> BTreeSet<NodeId> {
        // Bulk-build: collecting through `FromIterator` sorts once and
        // constructs the tree in one pass, instead of n log n inserts.
        self.edges.iter().flat_map(|&(u, v)| [u, v]).collect()
    }

    /// Number of edges incident to node `v` within this set.
    pub fn degree_of(&self, v: NodeId) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == v || b == v)
            .count()
    }
}

impl FromIterator<Edge> for EdgeSet {
    /// Collects (possibly unnormalized) pairs; self-loops are dropped.
    /// Delegates to `BTreeSet`'s own `FromIterator`, which sorts the items
    /// once and bulk-builds the tree — much cheaper than repeated inserts
    /// when the input is already near-sorted (e.g. decoded off the wire).
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        EdgeSet {
            edges: iter
                .into_iter()
                .filter(|&(u, v)| u != v)
                .map(|(u, v)| norm_edge(u, v))
                .collect(),
        }
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = Edge;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Edge>>;
    fn into_iter(self) -> Self::IntoIter {
        self.edges.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_self_loops() {
        let mut s = EdgeSet::new();
        assert!(s.insert(3, 1));
        assert!(!s.insert(1, 3), "same edge in other order is a duplicate");
        assert!(!s.insert(2, 2), "self loop rejected");
        assert!(s.contains(1, 3));
        assert!(s.contains(3, 1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.to_vec(), vec![(1, 3)]);
    }

    #[test]
    fn set_operations() {
        let a = EdgeSet::from_iter([(0, 1), (1, 2)]);
        let b = EdgeSet::from_iter([(1, 2), (2, 3)]);
        assert_eq!(a.union(&b).len(), 3);
        assert_eq!(a.intersection(&b).to_vec(), vec![(1, 2)]);
        assert_eq!(a.difference(&b).to_vec(), vec![(0, 1)]);
        assert_eq!(a.symmetric_difference(&b).len(), 2);
    }

    #[test]
    fn endpoints_and_degree() {
        let s = EdgeSet::from_iter([(0, 1), (1, 2), (4, 1)]);
        let eps: Vec<_> = s.endpoints().into_iter().collect();
        assert_eq!(eps, vec![0, 1, 2, 4]);
        assert_eq!(s.degree_of(1), 3);
        assert_eq!(s.degree_of(0), 1);
        assert_eq!(s.degree_of(9), 0);
    }

    #[test]
    fn remove_and_extend() {
        let mut a = EdgeSet::from_iter([(0, 1)]);
        let b = EdgeSet::from_iter([(2, 3)]);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert!(a.remove(1, 0));
        assert!(!a.remove(1, 0));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn from_iterator_trait() {
        let s: EdgeSet = vec![(5, 2), (2, 5), (1, 1)].into_iter().collect();
        assert_eq!(s.len(), 1);
        let collected: Vec<Edge> = (&s).into_iter().collect();
        assert_eq!(collected, vec![(2, 5)]);
    }
}
