//! Shard materialization: per-fragment subgraphs with L-hop halo rings.
//!
//! The sharded serving tier cuts a host graph with [`edge_cut_partition`]
//! and runs one witness engine per fragment. Each engine needs a concrete
//! [`Graph`] to operate on, not just a node set, so this module turns a
//! [`Fragment`] into a [`HaloShard`]: the subgraph induced on the fragment's
//! visible nodes (owned plus the replicated k-hop halo), kept in the host's
//! node-id space so every downstream computation — CSR construction,
//! neighborhood iteration, feature lookup — is bit-identical to the same
//! computation on the full graph restricted to that region.
//!
//! Halo nodes carry features (local inference reads them) but are not
//! servable: queries are routed by *ownership*, and the halo only exists so
//! an owned node's receptive field is complete without cross-shard
//! communication. Nodes outside the shard exist as isolated, featureless
//! vertices — identity preservation over compactness — and a compact
//! remapped view with id translation tables is available via
//! [`HaloShard::compact`] for callers that want dense storage.

use crate::edge::Edge;
use crate::graph::{Graph, NodeId};
use crate::partition::{Fragment, Partition};
use std::collections::{BTreeMap, BTreeSet};

/// One shard of a halo-partitioned graph: the subgraph induced on a
/// fragment's visible nodes, in host node-id space, plus id remap tables
/// for the compact view.
#[derive(Clone, Debug)]
pub struct HaloShard {
    /// Fragment index this shard was cut from.
    pub id: usize,
    /// Nodes this shard owns (servable: queries for these route here).
    pub owned: BTreeSet<NodeId>,
    /// All nodes visible to the shard: owned plus the halo ring. Only
    /// these carry features/labels in `graph`.
    pub covered: BTreeSet<NodeId>,
    /// The induced subgraph in host id space: `host.num_nodes()` vertices,
    /// edges with both endpoints in `covered`, features and labels only on
    /// covered nodes. Nodes outside `covered` are isolated and featureless.
    pub graph: Graph,
    /// Compact-local → host id (sorted ascending, one entry per covered node).
    pub global_of: Vec<NodeId>,
    /// Host id → compact-local index (inverse of `global_of`).
    pub local_of: BTreeMap<NodeId, usize>,
}

impl HaloShard {
    /// Whether this shard owns `v` (i.e. serves queries for it).
    pub fn owns(&self, v: NodeId) -> bool {
        self.owned.contains(&v)
    }

    /// Whether `v` is visible to this shard (owned or halo).
    pub fn covers(&self, v: NodeId) -> bool {
        self.covered.contains(&v)
    }

    /// Halo ring: covered nodes that are not owned.
    pub fn halo(&self) -> BTreeSet<NodeId> {
        self.covered.difference(&self.owned).copied().collect()
    }

    /// Number of edges in the induced shard graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Dense remapped copy of the shard: `covered.len()` vertices indexed by
    /// compact-local ids (`global_of`/`local_of` translate). Same edges,
    /// features and labels as `graph`, without the isolated out-of-shard
    /// vertices.
    pub fn compact(&self) -> Graph {
        let mut g = Graph::with_nodes(self.global_of.len());
        for (local, &global) in self.global_of.iter().enumerate() {
            let feats = self.graph.features(global);
            if !feats.is_empty() {
                g.set_features(local, feats.to_vec());
            }
            if let Some(l) = self.graph.label(global) {
                g.set_label(local, l);
            }
        }
        for (u, v) in self.graph.edges() {
            g.add_edge(self.local_of[&u], self.local_of[&v]);
        }
        g
    }
}

/// Materializes one fragment of `host` into a [`HaloShard`].
///
/// The shard graph keeps `host`'s full node-id space and contains exactly
/// the edges of `host` with both endpoints in `fragment.nodes`. Features and
/// labels are copied for visible nodes only, so a forward pass whose
/// receptive field stays inside the shard reads exactly the same values it
/// would on `host` — the bit-exactness contract of the sharded tier.
pub fn extract_halo_shard(host: &Graph, fragment: &Fragment) -> HaloShard {
    let mut graph = Graph::with_nodes(host.num_nodes());
    for &v in &fragment.nodes {
        let feats = host.features(v);
        if !feats.is_empty() {
            graph.set_features(v, feats.to_vec());
        }
        if let Some(l) = host.label(v) {
            graph.set_label(v, l);
        }
    }
    for &(u, v) in &fragment.edges {
        graph.add_edge(u, v);
    }
    let global_of: Vec<NodeId> = fragment.nodes.iter().copied().collect();
    let local_of: BTreeMap<NodeId, usize> = global_of
        .iter()
        .enumerate()
        .map(|(local, &global)| (global, local))
        .collect();
    HaloShard {
        id: fragment.id,
        owned: fragment.owned.clone(),
        covered: fragment.nodes.clone(),
        graph,
        global_of,
        local_of,
    }
}

/// Materializes every fragment of `partition` (see [`extract_halo_shard`]).
pub fn extract_halo_shards(host: &Graph, partition: &Partition) -> Vec<HaloShard> {
    partition
        .fragments
        .iter()
        .map(|f| extract_halo_shard(host, f))
        .collect()
}

/// Cut edges of `host` under `partition`: edges whose endpoints are owned by
/// different fragments. These are exactly the edges that appear in more than
/// one shard (via halo replication) and therefore need disturbance fan-out.
pub fn cut_edges(host: &Graph, partition: &Partition) -> Vec<Edge> {
    host.edges()
        .filter(|&(u, v)| partition.owner[u] != partition.owner[v])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::partition::edge_cut_partition;

    fn attributed_graph(seed: u64) -> Graph {
        let mut g = generators::erdos_renyi(24, 0.18, seed);
        for v in 0..g.num_nodes() {
            g.set_features(v, vec![v as f64, (v * v) as f64 * 0.5]);
            g.set_label(v, v % 3);
        }
        g
    }

    #[test]
    fn shard_graph_is_the_induced_subgraph() {
        for seed in 0..8u64 {
            let g = attributed_graph(seed);
            let p = edge_cut_partition(&g, 3, 2);
            for shard in extract_halo_shards(&g, &p) {
                assert_eq!(shard.graph.num_nodes(), g.num_nodes());
                // Every host edge inside the covered set is present, and no
                // edge leaves the covered set.
                let expected: Vec<Edge> = g
                    .edges()
                    .filter(|&(u, v)| shard.covers(u) && shard.covers(v))
                    .collect();
                let got: Vec<Edge> = shard.graph.edges().collect();
                assert_eq!(got, expected, "seed {seed} shard {}", shard.id);
                // Covered nodes carry the host's features and labels;
                // uncovered nodes carry neither.
                for v in g.node_ids() {
                    if shard.covers(v) {
                        assert_eq!(shard.graph.features(v), g.features(v));
                        assert_eq!(shard.graph.label(v), g.label(v));
                    } else {
                        assert!(shard.graph.features(v).is_empty());
                        assert_eq!(shard.graph.label(v), None);
                        assert_eq!(shard.graph.neighbors(v).count(), 0);
                    }
                }
            }
        }
    }

    #[test]
    fn owned_sets_tile_the_graph_and_halos_match_fragments() {
        let g = attributed_graph(3);
        let p = edge_cut_partition(&g, 4, 1);
        let shards = extract_halo_shards(&g, &p);
        let mut owned_count = vec![0usize; g.num_nodes()];
        for s in &shards {
            for &v in &s.owned {
                owned_count[v] += 1;
            }
            assert!(s.owned.is_subset(&s.covered));
            assert_eq!(s.halo(), s.covered.difference(&s.owned).copied().collect());
        }
        assert!(owned_count.iter().all(|&c| c == 1));
    }

    #[test]
    fn remap_tables_invert_each_other_and_compact_is_isomorphic() {
        let g = attributed_graph(5);
        let p = edge_cut_partition(&g, 3, 2);
        for shard in extract_halo_shards(&g, &p) {
            assert_eq!(shard.global_of.len(), shard.covered.len());
            for (local, &global) in shard.global_of.iter().enumerate() {
                assert_eq!(shard.local_of[&global], local);
            }
            let compact = shard.compact();
            assert_eq!(compact.num_nodes(), shard.covered.len());
            assert_eq!(compact.num_edges(), shard.graph.num_edges());
            for (u, v) in shard.graph.edges() {
                assert!(compact.has_edge(shard.local_of[&u], shard.local_of[&v]));
            }
            for (local, &global) in shard.global_of.iter().enumerate() {
                assert_eq!(compact.features(local), shard.graph.features(global));
                assert_eq!(compact.label(local), shard.graph.label(global));
            }
        }
    }

    #[test]
    fn cut_edges_are_exactly_the_cross_owner_edges() {
        let g = attributed_graph(7);
        let p = edge_cut_partition(&g, 3, 1);
        let cut = cut_edges(&g, &p);
        assert_eq!(cut.len(), p.cut_size(&g));
        for (u, v) in cut {
            assert_ne!(p.owner[u], p.owner[v]);
        }
    }
}
