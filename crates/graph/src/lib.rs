//! # rcw-graph
//!
//! Graph substrate for the RoboGExp reproduction: attributed undirected
//! graphs, witness subgraphs, edge-masked views, k-disturbances, CSR
//! snapshots, adjacency bitmaps, graph edit distance, traversal, random
//! generators, and edge-cut partitioning.
//!
//! Everything in this crate is deterministic: adjacency is kept in ordered
//! sets, generators take explicit seeds, and iteration orders never depend on
//! hashing. The paper's guarantees (fixed, deterministic GNN `M`; reproducible
//! witnesses) rest on this.

pub mod bitmap;
pub mod csr;
pub mod disturbance;
pub mod edge;
pub mod ged;
pub mod io;
pub mod generators;
pub mod graph;
pub mod partition;
pub mod subgraph;
pub mod traversal;
pub mod view;

pub use bitmap::{AdjacencyBitmap, Bitmap, VerifiedPairBitmap};
pub use csr::Csr;
pub use disturbance::{Disturbance, DisturbanceStrategy};
pub use edge::{norm_edge, Edge, EdgeSet};
pub use ged::{edge_jaccard, ged, normalized_ged};
pub use graph::{Graph, NodeId};
pub use partition::{edge_cut_partition, Fragment, Partition};
pub use subgraph::EdgeSubgraph;
pub use view::GraphView;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy: a random small graph plus two random edge subsets of it.
    fn graph_and_subsets() -> impl Strategy<Value = (Graph, Vec<Edge>, Vec<Edge>)> {
        (4usize..12, any::<u64>()).prop_flat_map(|(n, seed)| {
            let g = generators::erdos_renyi(n, 0.4, seed);
            let edges = g.edge_vec();
            let len = edges.len();
            (
                Just(g),
                proptest::collection::vec(0..len.max(1), 0..=len.min(6)),
                proptest::collection::vec(0..len.max(1), 0..=len.min(6)),
            )
                .prop_map(move |(g, ia, ib)| {
                    let pick = |idx: &Vec<usize>| -> Vec<Edge> {
                        idx.iter()
                            .filter_map(|&i| edges.get(i).copied())
                            .collect()
                    };
                    let a = pick(&ia);
                    let b = pick(&ib);
                    (g, a, b)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Flipping the same pair set twice restores the original graph.
        #[test]
        fn flip_is_involutive((g, ea, _eb) in graph_and_subsets()) {
            let once = g.flip_edges(&ea);
            let twice = once.flip_edges(&ea);
            prop_assert_eq!(twice.edge_vec(), g.edge_vec());
        }

        /// Normalized GED is symmetric, zero on identical inputs, and bounded by 2.
        #[test]
        fn normalized_ged_properties((_g, ea, eb) in graph_and_subsets()) {
            let a = EdgeSubgraph::from_edges(ea);
            let b = EdgeSubgraph::from_edges(eb);
            let dab = normalized_ged(&a, &b);
            let dba = normalized_ged(&b, &a);
            prop_assert!((dab - dba).abs() < 1e-12);
            prop_assert!(dab >= 0.0 && dab <= 2.0);
            prop_assert_eq!(normalized_ged(&a, &a), 0.0);
        }

        /// A view restricted to a witness shows exactly the witness edges that
        /// exist in the host graph.
        #[test]
        fn restricted_view_edge_count((g, ea, _eb) in graph_and_subsets()) {
            let set = EdgeSet::from_iter(ea.iter().copied());
            let view = GraphView::restricted_to(&g, &set);
            let expected = set.iter().filter(|&(u, v)| g.has_edge(u, v)).count();
            prop_assert_eq!(view.num_edges(), expected);
        }

        /// CSR snapshots agree with the view they were built from.
        #[test]
        fn csr_agrees_with_view((g, ea, _eb) in graph_and_subsets()) {
            let set = EdgeSet::from_iter(ea.iter().copied());
            let view = GraphView::without(&g, &set);
            let csr = Csr::from_view(&view);
            for u in 0..g.num_nodes() {
                prop_assert_eq!(csr.neighbors(u).to_vec(), view.neighbors(u));
            }
        }

        /// Every node is owned by exactly one fragment, for any partition arity.
        #[test]
        fn partition_owns_every_node_once((g, _ea, _eb) in graph_and_subsets(), parts in 1usize..5) {
            let p = edge_cut_partition(&g, parts, 1);
            let mut count = vec![0usize; g.num_nodes()];
            for f in &p.fragments {
                for &v in &f.owned {
                    count[v] += 1;
                }
            }
            prop_assert!(count.iter().all(|&c| c == 1));
        }
    }
}
