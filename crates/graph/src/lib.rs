//! # rcw-graph
//!
//! Graph substrate for the RoboGExp reproduction: attributed undirected
//! graphs, witness subgraphs, edge-masked views, k-disturbances, CSR
//! snapshots, adjacency bitmaps, graph edit distance, traversal, random
//! generators, and edge-cut partitioning.
//!
//! Everything in this crate is deterministic: adjacency is kept in ordered
//! sets, generators take explicit seeds, and iteration orders never depend on
//! hashing. The paper's guarantees (fixed, deterministic GNN `M`; reproducible
//! witnesses) rest on this.

pub mod bitmap;
pub mod csr;
pub mod disturbance;
pub mod edge;
pub mod ged;
pub mod generators;
pub mod graph;
pub mod halo;
pub mod io;
pub mod localize;
pub mod partition;
pub mod shrink;
pub mod subgraph;
pub mod traversal;
pub mod view;

pub use bitmap::{AdjacencyBitmap, Bitmap, VerifiedPairBitmap};
pub use csr::{Csr, CsrNorms};
pub use disturbance::{disturbance_footprint, Disturbance, DisturbanceStrategy};
pub use edge::{norm_edge, Edge, EdgeSet};
pub use ged::{edge_jaccard, ged, normalized_ged};
pub use graph::{Graph, NodeId};
pub use halo::{cut_edges, extract_halo_shard, extract_halo_shards, HaloShard};
pub use localize::{BallScratch, BallVariant, ForwardCtx, Locality};
pub use partition::{edge_cut_partition, Fragment, Partition};
pub use shrink::{describe_graph, shrink_graph};
pub use subgraph::EdgeSubgraph;
pub use view::GraphView;

#[cfg(test)]
mod proptests {
    use super::*;
    use rcw_linalg::rng::Rng;

    /// A random small graph plus two random edge subsets of it, deterministic
    /// in the seed. This replaces the old `proptest` strategy — the workspace
    /// builds offline, so the same properties are checked over a pinned seed
    /// sweep instead.
    fn graph_and_subsets(seed: u64) -> (Graph, Vec<Edge>, Vec<Edge>) {
        let mut rng = Rng::seed_from_u64(seed ^ 0xA5A5);
        let n = 4 + (seed as usize % 8);
        let g = generators::erdos_renyi(n, 0.4, seed);
        let edges = g.edge_vec();
        let pick = |rng: &mut Rng| -> Vec<Edge> {
            if edges.is_empty() {
                return Vec::new();
            }
            let take = rng.gen_range(0..edges.len().min(6) + 1);
            (0..take)
                .map(|_| edges[rng.gen_range(0..edges.len())])
                .collect()
        };
        let a = pick(&mut rng);
        let b = pick(&mut rng);
        (g, a, b)
    }

    const CASES: u64 = 64;

    /// Flipping the same pair set twice restores the original graph.
    #[test]
    fn flip_is_involutive() {
        for seed in 0..CASES {
            let (g, ea, _eb) = graph_and_subsets(seed);
            let once = g.flip_edges(&ea);
            let twice = once.flip_edges(&ea);
            assert_eq!(twice.edge_vec(), g.edge_vec(), "seed {seed}");
        }
    }

    /// Normalized GED is symmetric, zero on identical inputs, and bounded by 2.
    #[test]
    fn normalized_ged_properties() {
        for seed in 0..CASES {
            let (_g, ea, eb) = graph_and_subsets(seed);
            let a = EdgeSubgraph::from_edges(ea);
            let b = EdgeSubgraph::from_edges(eb);
            let dab = normalized_ged(&a, &b);
            let dba = normalized_ged(&b, &a);
            assert!((dab - dba).abs() < 1e-12, "seed {seed}");
            assert!((0.0..=2.0).contains(&dab), "seed {seed}");
            assert_eq!(normalized_ged(&a, &a), 0.0, "seed {seed}");
        }
    }

    /// A view restricted to a witness shows exactly the witness edges that
    /// exist in the host graph.
    #[test]
    fn restricted_view_edge_count() {
        for seed in 0..CASES {
            let (g, ea, _eb) = graph_and_subsets(seed);
            let set = EdgeSet::from_iter(ea.iter().copied());
            let view = GraphView::restricted_to(&g, &set);
            let expected = set.iter().filter(|&(u, v)| g.has_edge(u, v)).count();
            assert_eq!(view.num_edges(), expected, "seed {seed}");
        }
    }

    /// CSR snapshots agree with the view they were built from.
    #[test]
    fn csr_agrees_with_view() {
        for seed in 0..CASES {
            let (g, ea, _eb) = graph_and_subsets(seed);
            let set = EdgeSet::from_iter(ea.iter().copied());
            let view = GraphView::without(&g, &set);
            let csr = Csr::from_view(&view);
            for u in 0..g.num_nodes() {
                assert_eq!(csr.neighbors(u).to_vec(), view.neighbors(u), "seed {seed}");
            }
        }
    }

    /// Every node is owned by exactly one fragment, for any partition arity.
    #[test]
    fn partition_owns_every_node_once() {
        for seed in 0..CASES {
            let (g, _ea, _eb) = graph_and_subsets(seed);
            for parts in 1usize..5 {
                let p = edge_cut_partition(&g, parts, 1);
                let mut count = vec![0usize; g.num_nodes()];
                for f in &p.fragments {
                    for &v in &f.owned {
                        count[v] += 1;
                    }
                }
                assert!(count.iter().all(|&c| c == 1), "seed {seed}, parts {parts}");
            }
        }
    }
}
