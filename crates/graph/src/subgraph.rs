//! Edge subgraphs (witness structures).
//!
//! A witness `Gw` in the paper is a subgraph of `G` identified by a set of
//! edges plus the set of nodes it covers (test nodes are always members even
//! when they have no incident witness edge — a single test node is the
//! "trivial factual witness"). [`EdgeSubgraph`] captures exactly that.

use crate::edge::{Edge, EdgeSet};
use crate::graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// A subgraph of a host graph, represented by explicit node and edge sets.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeSubgraph {
    nodes: BTreeSet<NodeId>,
    edges: EdgeSet,
}

impl EdgeSubgraph {
    /// Creates an empty subgraph.
    pub fn new() -> Self {
        EdgeSubgraph::default()
    }

    /// Creates a subgraph containing only the given nodes (no edges). This is
    /// the trivial witness `Gs = VT` that `RoboGExp` starts from.
    pub fn from_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        EdgeSubgraph {
            nodes: nodes.into_iter().collect(),
            edges: EdgeSet::new(),
        }
    }

    /// Creates a subgraph from edges; the node set is the edges' endpoints.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(edges: I) -> Self {
        let es = EdgeSet::from_iter(edges);
        let nodes = es.endpoints();
        EdgeSubgraph { nodes, edges: es }
    }

    /// Creates a subgraph from an explicit node list plus edges; the node
    /// set is the union of the list and the edges' endpoints. Equivalent to
    /// [`EdgeSubgraph::from_edges`] followed by [`EdgeSubgraph::add_node`]
    /// per node, but bulk-builds both sets in one sorting pass — the wire
    /// decoders sit on the serving hot path.
    pub fn from_nodes_and_edges<N, E>(nodes: N, edges: E) -> Self
    where
        N: IntoIterator<Item = NodeId>,
        E: IntoIterator<Item = Edge>,
    {
        let es = EdgeSet::from_iter(edges);
        let nodes: BTreeSet<NodeId> = nodes
            .into_iter()
            .chain(es.iter().flat_map(|(u, v)| [u, v]))
            .collect();
        EdgeSubgraph { nodes, edges: es }
    }

    /// Creates the full subgraph covering an entire graph (the trivial k-RCW `G`).
    pub fn full(graph: &Graph) -> Self {
        EdgeSubgraph {
            nodes: graph.node_ids().collect(),
            edges: EdgeSet::from_iter(graph.edges()),
        }
    }

    /// Adds a node.
    pub fn add_node(&mut self, v: NodeId) {
        self.nodes.insert(v);
    }

    /// Adds an edge (and both endpoints). Returns `true` if newly added.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        self.nodes.insert(u);
        self.nodes.insert(v);
        self.edges.insert(u, v)
    }

    /// Removes an edge (endpoints stay). Returns `true` if it was present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        self.edges.remove(u, v)
    }

    /// Whether the node is part of the subgraph.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Whether the edge is part of the subgraph.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(u, v)
    }

    /// Node set.
    pub fn nodes(&self) -> &BTreeSet<NodeId> {
        &self.nodes
    }

    /// Edge set.
    pub fn edges(&self) -> &EdgeSet {
        &self.edges
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Size `|V| + |E|`, the quantity the paper's normalized GED divides by.
    pub fn size(&self) -> usize {
        self.nodes.len() + self.edges.len()
    }

    /// Whether the subgraph has no nodes and no edges.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// A witness is "non-trivial" per the paper when it has at least one edge
    /// and is not the whole graph.
    pub fn is_nontrivial(&self, host: &Graph) -> bool {
        !self.edges.is_empty() && self.edges.len() < host.num_edges()
    }

    /// Union with another subgraph.
    pub fn union(&self, other: &EdgeSubgraph) -> EdgeSubgraph {
        EdgeSubgraph {
            nodes: self.nodes.union(&other.nodes).copied().collect(),
            edges: self.edges.union(&other.edges),
        }
    }

    /// Extends `self` with all nodes and edges of `other`.
    pub fn extend(&mut self, other: &EdgeSubgraph) {
        self.nodes.extend(other.nodes.iter().copied());
        self.edges.extend(&other.edges);
    }

    /// Augments with a set of edges (endpoints are added too).
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, edges: I) {
        for (u, v) in edges {
            self.add_edge(u, v);
        }
    }

    /// Materializes the subgraph as a standalone [`Graph`] that keeps the host
    /// graph's node ids, features, and labels, but only the subgraph's edges.
    /// Nodes outside the subgraph become isolated nodes.
    pub fn materialize(&self, host: &Graph) -> Graph {
        let mut g = Graph::with_nodes(host.num_nodes());
        for v in host.node_ids() {
            g.set_features(v, host.features(v).to_vec());
            if let Some(l) = host.label(v) {
                g.set_label(v, l);
            }
        }
        for (u, v) in self.edges.iter() {
            if host.contains_node(u) && host.contains_node(v) {
                g.add_edge(u, v);
            }
        }
        g
    }

    /// Validates that every node and edge of the subgraph exists in `host`.
    pub fn is_subgraph_of(&self, host: &Graph) -> bool {
        self.nodes.iter().all(|&v| host.contains_node(v))
            && self.edges.iter().all(|(u, v)| host.has_edge(u, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        let mut g = Graph::with_nodes(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g
    }

    #[test]
    fn from_nodes_has_no_edges() {
        let s = EdgeSubgraph::from_nodes([2, 0]);
        assert_eq!(s.num_nodes(), 2);
        assert_eq!(s.num_edges(), 0);
        assert!(s.contains_node(0));
        assert!(!s.contains_node(1));
    }

    #[test]
    fn from_edges_collects_endpoints() {
        let s = EdgeSubgraph::from_edges([(1, 0), (1, 2)]);
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2);
        assert!(s.contains_edge(0, 1));
        assert_eq!(s.size(), 5);
    }

    #[test]
    fn full_covers_graph() {
        let g = path4();
        let s = EdgeSubgraph::full(&g);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.num_edges(), 3);
        assert!(!s.is_nontrivial(&g), "the whole graph is a trivial witness");
    }

    #[test]
    fn nontrivial_requires_an_edge_and_not_all_edges() {
        let g = path4();
        let empty = EdgeSubgraph::from_nodes([0]);
        assert!(!empty.is_nontrivial(&g));
        let some = EdgeSubgraph::from_edges([(0, 1)]);
        assert!(some.is_nontrivial(&g));
    }

    #[test]
    fn union_and_extend() {
        let a = EdgeSubgraph::from_edges([(0, 1)]);
        let b = EdgeSubgraph::from_edges([(1, 2)]);
        let u = a.union(&b);
        assert_eq!(u.num_edges(), 2);
        assert_eq!(u.num_nodes(), 3);
        let mut c = a.clone();
        c.extend(&b);
        assert_eq!(c, u);
        let mut d = EdgeSubgraph::new();
        d.extend_edges([(5, 6), (6, 5)]);
        assert_eq!(d.num_edges(), 1);
    }

    #[test]
    fn materialize_keeps_node_identity() {
        let mut g = path4();
        g.set_label(3, 1);
        g.set_features(2, vec![7.0]);
        let s = EdgeSubgraph::from_edges([(1, 2)]);
        let m = s.materialize(&g);
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(m.num_edges(), 1);
        assert!(m.has_edge(1, 2));
        assert!(!m.has_edge(0, 1));
        assert_eq!(m.label(3), Some(1));
        assert_eq!(m.features(2), &[7.0]);
    }

    #[test]
    fn subgraph_validation() {
        let g = path4();
        let ok = EdgeSubgraph::from_edges([(0, 1), (2, 3)]);
        assert!(ok.is_subgraph_of(&g));
        let bad_edge = EdgeSubgraph::from_edges([(0, 3)]);
        assert!(!bad_edge.is_subgraph_of(&g));
        let bad_node = EdgeSubgraph::from_nodes([17]);
        assert!(!bad_node.is_subgraph_of(&g));
    }
}
