//! Epoch-keyed personalized-PageRank row cache.
//!
//! PPR rows over the *host* graph are reused heavily by a long-lived witness
//! engine: candidate-pair pruning scores every pair near a test node by the
//! test node's PPR mass, and the same test nodes recur across queries. Rows
//! are keyed by the graph's structural epoch ([`rcw_graph::Graph::epoch`]).
//!
//! Invalidation is either total (an unknown epoch flushes everything — the
//! safe default when the caller does not track footprints) or selective:
//! [`PprCache::advance_epoch`] keeps rows whose seed node lies outside the
//! disturbance footprint. A retained row differs from the freshly computed
//! one by at most the PPR mass the seed places beyond the footprint radius.
//! Note the parameterization: throughout this workspace `alpha` is the
//! *continuation* probability (`pi = (1-alpha) e_v + alpha * pi * P`, as in
//! [`crate::ppr::ppr_row`]), so mass at distance `> h` from the seed is
//! bounded by `alpha^(h+1)` — with the default `alpha = 0.2` and a footprint
//! radius of 2 that is under 1% of the row, the same order as the iterative
//! solver's own truncation. This is why footprint-disjoint rows are safe to
//! keep.

use crate::ppr::ppr_row;
use rcw_graph::{Csr, NodeId};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
struct Inner {
    epoch: u64,
    rows: BTreeMap<NodeId, Arc<Vec<f64>>>,
    hits: usize,
    misses: usize,
}

/// A shared, interior-mutable cache of PPR rows at a fixed teleport
/// probability and iteration budget.
#[derive(Debug)]
pub struct PprCache {
    alpha: f64,
    iters: usize,
    inner: Mutex<Inner>,
}

impl PprCache {
    /// Creates an empty cache computing rows with the given teleport
    /// probability and fixed-point iteration count.
    pub fn new(alpha: f64, iters: usize) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "PprCache: alpha in (0,1)");
        PprCache {
            alpha,
            iters: iters.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The teleport probability rows are computed with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Returns the PPR row of `v` over `csr`, valid for `epoch`. A cached row
    /// is returned when its epoch matches. An *unknown newer* epoch flushes
    /// the whole cache first (callers that can bound the disturbance use
    /// [`PprCache::advance_epoch`] beforehand to retain unaffected rows). A
    /// *stale* epoch — a query still running on a pre-disturbance graph
    /// snapshot while the cache has already advanced — computes the row
    /// without touching the cache, so a racing reader cannot wipe the rows
    /// `advance_epoch` deliberately retained (graph epochs come from a
    /// monotone process-wide counter, so "stale" is simply `<`).
    pub fn row(&self, csr: &Csr, v: NodeId, epoch: u64) -> Arc<Vec<f64>> {
        {
            let mut inner = self.inner.lock().expect("PprCache lock poisoned");
            if inner.epoch < epoch {
                inner.rows.clear();
                inner.epoch = epoch;
            }
            if inner.epoch == epoch {
                if let Some(row) = inner.rows.get(&v).map(Arc::clone) {
                    inner.hits += 1;
                    return row;
                }
            }
            inner.misses += 1;
        }
        // Fixed-point iteration outside the lock: concurrent misses on
        // different seed nodes must not serialize. A concurrent duplicate
        // compute of the same row is rare and harmless (identical values);
        // the row is only stored if the epoch has not moved meanwhile.
        let row = Arc::new(ppr_row(csr, v, self.alpha, self.iters));
        let mut inner = self.inner.lock().expect("PprCache lock poisoned");
        if inner.epoch == epoch {
            inner.rows.insert(v, Arc::clone(&row));
        }
        row
    }

    /// Moves the cache to `new_epoch`, dropping only rows whose seed node is
    /// inside `stale` (the disturbance footprint) and re-tagging the rest.
    pub fn advance_epoch(&self, new_epoch: u64, stale: &BTreeSet<NodeId>) {
        let mut inner = self.inner.lock().expect("PprCache lock poisoned");
        if inner.epoch == new_epoch {
            return;
        }
        inner.rows.retain(|v, _| !stale.contains(v));
        inner.epoch = new_epoch;
    }

    /// Number of rows currently held.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("PprCache lock poisoned")
            .rows
            .len()
    }

    /// Whether the cache holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime `(hits, misses)` counters.
    pub fn stats(&self) -> (usize, usize) {
        let inner = self.inner.lock().expect("PprCache lock poisoned");
        (inner.hits, inner.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::{generators, GraphView};

    fn csr_of(g: &rcw_graph::Graph) -> Csr {
        Csr::from_view(&GraphView::full(g))
    }

    #[test]
    fn rows_hit_within_an_epoch_and_flush_across() {
        let g = generators::erdos_renyi(12, 0.4, 3);
        let csr = csr_of(&g);
        let cache = PprCache::new(0.2, 30);
        let a = cache.row(&csr, 0, g.epoch());
        let b = cache.row(&csr, 0, g.epoch());
        assert!(Arc::ptr_eq(&a, &b), "second read is a cache hit");
        assert_eq!(cache.stats(), (1, 1));
        // unknown epoch flushes everything
        let mut g2 = g.clone();
        g2.flip_edges_in_place(&[g.edge_vec()[0]]);
        let csr2 = csr_of(&g2);
        let c = cache.row(&csr2, 0, g2.epoch());
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 1, "old-epoch rows were dropped");
    }

    #[test]
    fn cached_rows_match_direct_computation() {
        let g = generators::erdos_renyi(10, 0.5, 11);
        let csr = csr_of(&g);
        let cache = PprCache::new(0.15, 40);
        let cached = cache.row(&csr, 3, g.epoch());
        assert_eq!(*cached, ppr_row(&csr, 3, 0.15, 40));
    }

    #[test]
    fn advance_epoch_retains_footprint_disjoint_rows() {
        let g = generators::erdos_renyi(12, 0.4, 5);
        let csr = csr_of(&g);
        let cache = PprCache::new(0.2, 30);
        cache.row(&csr, 0, g.epoch());
        cache.row(&csr, 5, g.epoch());
        let stale: BTreeSet<NodeId> = [5, 6].into_iter().collect();
        cache.advance_epoch(g.epoch() + 1, &stale);
        assert_eq!(cache.len(), 1, "row 5 dropped, row 0 retained");
        // retained row now serves the new epoch without recomputation
        let (hits_before, _) = cache.stats();
        cache.row(&csr, 0, g.epoch() + 1);
        assert_eq!(cache.stats().0, hits_before + 1);
    }

    #[test]
    fn stale_epoch_reads_compute_without_wiping_retained_rows() {
        // A query on a pre-disturbance snapshot races an engine whose cache
        // already advanced: the stale read must neither be served from the
        // newer cache nor destroy what advance_epoch retained.
        let g = generators::erdos_renyi(12, 0.4, 5);
        let csr = csr_of(&g);
        let cache = PprCache::new(0.2, 30);
        let old_epoch = g.epoch();
        let retained = cache.row(&csr, 0, old_epoch);
        cache.advance_epoch(old_epoch + 1, &BTreeSet::new());
        assert_eq!(cache.len(), 1);
        // stale read: correct values, cache untouched
        let stale = cache.row(&csr, 0, old_epoch);
        assert_eq!(*stale, *retained);
        assert!(!Arc::ptr_eq(&stale, &retained), "not served from the cache");
        assert_eq!(cache.len(), 1, "retained row survived the stale read");
        // the retained row still serves the new epoch as a hit
        let (hits_before, _) = cache.stats();
        cache.row(&csr, 0, old_epoch + 1);
        assert_eq!(cache.stats().0, hits_before + 1);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_out_of_range_is_rejected() {
        PprCache::new(1.0, 10);
    }
}
