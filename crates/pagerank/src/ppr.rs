//! Personalized PageRank (PPR).
//!
//! The APPNP propagation operator and the paper's robustness machinery are
//! both built on the PPR matrix
//! `Pi = (1 - alpha) * (I - alpha * D^{-1} (A + I))^{-1}`
//! (self-loops included, matching the APPNP implementation in `rcw-gnn`).
//! This module provides the exact dense computation (small graphs, tests) and
//! iterative row/value computations (everything else).

use rcw_graph::{Csr, GraphView, NodeId};
use rcw_linalg::{solve, Matrix};

/// Default number of fixed-point iterations; the iteration contracts with
/// factor `alpha`, so 50 iterations give ~`alpha^50` residual.
pub const DEFAULT_ITERS: usize = 50;

/// Builds the row-stochastic propagation matrix `P = D^{-1}(A + I)` of a view.
pub fn propagation_matrix(view: &GraphView<'_>) -> Matrix {
    let n = view.num_nodes();
    let mut p = Matrix::zeros(n, n);
    for u in 0..n {
        let nbrs = view.neighbors(u);
        let d = nbrs.len() as f64 + 1.0;
        p.set(u, u, 1.0 / d);
        for v in nbrs {
            p.set(u, v, 1.0 / d);
        }
    }
    p
}

/// Exact PPR matrix `Pi = (1-alpha)(I - alpha P)^{-1}` via dense solve.
/// Suitable for graphs up to a few hundred nodes (tests, case studies).
pub fn ppr_matrix_exact(view: &GraphView<'_>, alpha: f64) -> Matrix {
    assert!(
        alpha > 0.0 && alpha < 1.0,
        "ppr_matrix_exact: alpha in (0,1)"
    );
    let n = view.num_nodes();
    let p = propagation_matrix(view);
    let system = Matrix::identity(n).sub(&p.scale(alpha));
    let inv =
        solve::invert(&system).expect("(I - alpha*P) is diagonally dominant, hence invertible");
    inv.scale(1.0 - alpha)
}

/// One personalized-PageRank row `pi(v)` computed iteratively:
/// `pi_v = (1-alpha) e_v + alpha * pi_v P` (a row-vector fixed point).
pub fn ppr_row(csr: &Csr, v: NodeId, alpha: f64, iters: usize) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha < 1.0, "ppr_row: alpha in (0,1)");
    let n = csr.num_nodes();
    assert!(v < n, "ppr_row: node out of range");
    let mut pi = vec![0.0; n];
    pi[v] = 1.0 - alpha;
    let mut buf = vec![0.0; n];
    for _ in 0..iters {
        // buf = pi * P  (row vector times row-stochastic matrix)
        buf.fill(0.0);
        for u in 0..n {
            if pi[u] == 0.0 {
                continue;
            }
            let w = pi[u] / (csr.degree(u) as f64 + 1.0);
            buf[u] += w;
            for &t in csr.neighbors(u) {
                buf[t] += w;
            }
        }
        for (i, value) in pi.iter_mut().enumerate() {
            let teleport = if i == v { 1.0 - alpha } else { 0.0 };
            *value = teleport + alpha * buf[i];
        }
    }
    pi
}

/// The value function `X = (I - alpha P)^{-1} r`, i.e. the fixed point of
/// `X = r + alpha * P X`. Used by the policy-iteration disturbance search:
/// the PPR-weighted objective satisfies `pi(v)^T r = (1-alpha) * X[v]`.
pub fn value_function(csr: &Csr, r: &[f64], alpha: f64, iters: usize) -> Vec<f64> {
    assert!(alpha > 0.0 && alpha < 1.0, "value_function: alpha in (0,1)");
    let n = csr.num_nodes();
    assert_eq!(r.len(), n, "value_function: r length mismatch");
    let mut x = r.to_vec();
    let mut buf = vec![0.0; n];
    for _ in 0..iters {
        // buf = P x
        for u in 0..n {
            let d = csr.degree(u) as f64 + 1.0;
            let mut acc = x[u];
            for &t in csr.neighbors(u) {
                acc += x[t];
            }
            buf[u] = acc / d;
        }
        for i in 0..n {
            x[i] = r[i] + alpha * buf[i];
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::{generators, Graph};

    fn path3() -> Graph {
        let mut g = Graph::with_nodes(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g
    }

    #[test]
    fn propagation_matrix_is_row_stochastic() {
        let g = generators::erdos_renyi(12, 0.3, 3);
        let p = propagation_matrix(&GraphView::full(&g));
        for s in p.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_ppr_rows_sum_to_one() {
        let g = path3();
        let pi = ppr_matrix_exact(&GraphView::full(&g), 0.2);
        for s in pi.row_sums() {
            assert!((s - 1.0).abs() < 1e-9, "row sum {s}");
        }
        // the diagonal (restart mass) dominates any other entry of the row
        for v in 0..3 {
            for u in 0..3 {
                if u != v {
                    assert!(pi.get(v, v) >= pi.get(v, u));
                }
            }
        }
    }

    #[test]
    fn iterative_row_matches_exact() {
        let g = generators::erdos_renyi(10, 0.35, 9);
        let view = GraphView::full(&g);
        let exact = ppr_matrix_exact(&view, 0.15);
        let csr = Csr::from_view(&view);
        for v in [0usize, 3, 7] {
            let row = ppr_row(&csr, v, 0.15, 200);
            for (u, &val) in row.iter().enumerate() {
                assert!(
                    (val - exact.get(v, u)).abs() < 1e-6,
                    "pi[{v}][{u}]: {} vs {}",
                    row[u],
                    exact.get(v, u)
                );
            }
        }
    }

    #[test]
    fn value_function_matches_objective_identity() {
        // pi(v)^T r == (1 - alpha) * X[v]
        let g = generators::erdos_renyi(9, 0.4, 17);
        let view = GraphView::full(&g);
        let csr = Csr::from_view(&view);
        let alpha = 0.2;
        let r: Vec<f64> = (0..g.num_nodes()).map(|i| (i as f64) * 0.3 - 1.0).collect();
        let x = value_function(&csr, &r, alpha, 300);
        let exact = ppr_matrix_exact(&view, alpha);
        for (v, &xv) in x.iter().enumerate() {
            let objective: f64 = exact.row(v).iter().zip(&r).map(|(p, ri)| p * ri).sum();
            assert!(
                (objective - (1.0 - alpha) * xv).abs() < 1e-6,
                "node {v}: {objective} vs {}",
                (1.0 - alpha) * xv
            );
        }
    }

    #[test]
    fn ppr_concentrates_on_the_source() {
        let g = path3();
        let csr = Csr::from_view(&GraphView::full(&g));
        let row = ppr_row(&csr, 0, 0.1, 100);
        assert!(row[0] > row[1] && row[1] > row[2]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_bad_alpha() {
        let g = path3();
        ppr_matrix_exact(&GraphView::full(&g), 1.0);
    }
}
