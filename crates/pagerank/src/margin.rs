//! Worst-case classification margins for APPNP (Eq. 2 of the paper).
//!
//! For an APPNP classifier the propagated logit of node `v` for class `c` is
//! `pi(v)^T H[:, c]`, where `H` is the matrix of *local* (pre-propagation)
//! logits and `pi(v)` is `v`'s personalized-PageRank row over the evaluated
//! graph. The margin of the assigned label `l` against a competitor `c` under
//! a disturbance `E_k` is therefore
//!
//! ```text
//! m_{l,c}(v) = pi_{E_k}(v)^T ( H[:, l] - H[:, c] )
//! ```
//!
//! and node `v` is robust when the *worst-case* margin (minimum over all
//! admissible disturbances and all `c != l`) stays positive.

use crate::ppr::{ppr_row, DEFAULT_ITERS};
use rcw_gnn::Appnp;
use rcw_graph::{Csr, EdgeSet, GraphView, NodeId};
use rcw_linalg::Matrix;

/// Classification margin of `v` for label `l` against label `c`, evaluated on
/// the given view (which may already include a disturbance).
pub fn margin_on_view(
    appnp: &Appnp,
    view: &GraphView<'_>,
    local_logits: &Matrix,
    v: NodeId,
    label_l: usize,
    label_c: usize,
) -> f64 {
    let csr = Csr::from_view(view);
    margin_on_csr(appnp, &csr, local_logits, v, label_l, label_c)
}

/// Same as [`margin_on_view`] but over a pre-built CSR snapshot.
pub fn margin_on_csr(
    appnp: &Appnp,
    csr: &Csr,
    local_logits: &Matrix,
    v: NodeId,
    label_l: usize,
    label_c: usize,
) -> f64 {
    let pi = ppr_row(csr, v, appnp.alpha(), DEFAULT_ITERS);
    let mut m = 0.0;
    for (u, &p) in pi.iter().enumerate() {
        m += p * (local_logits.get(u, label_l) - local_logits.get(u, label_c));
    }
    m
}

/// Margin of `v` for `l` vs `c` after applying a disturbance (edge flips) on
/// top of `base_view`.
pub fn margin_under_disturbance(
    appnp: &Appnp,
    base_view: &GraphView<'_>,
    local_logits: &Matrix,
    disturbance: &EdgeSet,
    v: NodeId,
    label_l: usize,
    label_c: usize,
) -> f64 {
    let disturbed = base_view.flipped(disturbance);
    margin_on_view(appnp, &disturbed, local_logits, v, label_l, label_c)
}

/// The margin of `v`'s assigned label `l` against *all* other classes on a
/// view: `min_{c != l} m_{l,c}(v)`. Positive means the label is stable on
/// this particular view.
pub fn min_margin_all_classes(
    appnp: &Appnp,
    view: &GraphView<'_>,
    local_logits: &Matrix,
    v: NodeId,
    label_l: usize,
) -> f64 {
    let csr = Csr::from_view(view);
    let classes = local_logits.cols();
    let mut min = f64::INFINITY;
    for c in 0..classes {
        if c == label_l {
            continue;
        }
        min = min.min(margin_on_csr(appnp, &csr, local_logits, v, label_l, c));
    }
    min
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_gnn::{GnnModel, TrainConfig};
    use rcw_graph::Graph;

    /// Small two-community graph with an APPNP trained to separate them.
    fn trained_setup() -> (Graph, Appnp) {
        let mut g = Graph::new();
        for i in 0..10 {
            let class = usize::from(i >= 5);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        for u in 5..10 {
            for v in (u + 1)..10 {
                g.add_edge(u, v);
            }
        }
        g.add_edge(4, 5);
        let mut appnp = Appnp::new(&[2, 8, 2], 0.2, 15, 3);
        let view = GraphView::full(&g);
        let nodes: Vec<usize> = (0..10).collect();
        appnp.train(
            &view,
            &nodes,
            &TrainConfig {
                epochs: 150,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, appnp)
    }

    #[test]
    fn margin_sign_agrees_with_prediction() {
        let (g, appnp) = trained_setup();
        let view = GraphView::full(&g);
        let h = appnp.local_logits(&view);
        for v in 0..g.num_nodes() {
            let pred = appnp.predict(v, &view).unwrap();
            let other = 1 - pred;
            let m = margin_on_view(&appnp, &view, &h, v, pred, other);
            assert!(
                m > 0.0,
                "node {v}: margin {m} should be positive for its prediction"
            );
            let m_rev = margin_on_view(&appnp, &view, &h, v, other, pred);
            assert!(m_rev < 0.0);
        }
    }

    #[test]
    fn margin_matches_propagated_logit_difference() {
        // pi(v)^T (H_l - H_c) must equal Z[v][l] - Z[v][c] where Z are the
        // propagated APPNP logits (up to iteration tolerance).
        let (g, appnp) = trained_setup();
        let view = GraphView::full(&g);
        let h = appnp.local_logits(&view);
        let z = appnp.logits(&view);
        for v in [0usize, 4, 7] {
            let m = margin_on_view(&appnp, &view, &h, v, 0, 1);
            let expected = z.get(v, 0) - z.get(v, 1);
            assert!(
                (m - expected).abs() < 1e-4,
                "node {v}: margin {m} vs logit diff {expected}"
            );
        }
    }

    #[test]
    fn disturbance_can_reduce_the_margin() {
        let (g, appnp) = trained_setup();
        let view = GraphView::full(&g);
        let h = appnp.local_logits(&view);
        // node 4 sits at the boundary; rewiring it towards the other community
        // should reduce its class-0 margin
        let v = 4;
        let clean = margin_on_view(&appnp, &view, &h, v, 0, 1);
        let disturbance: EdgeSet = [
            (4usize, 6usize),
            (4usize, 7usize),
            (4usize, 8usize),
            (0usize, 4usize),
            (1usize, 4usize),
        ]
        .into_iter()
        .collect();
        let disturbed = margin_under_disturbance(&appnp, &view, &h, &disturbance, v, 0, 1);
        assert!(
            disturbed < clean,
            "adding cross-community edges must shrink the margin: {disturbed} vs {clean}"
        );
    }

    #[test]
    fn min_margin_is_at_most_any_single_margin() {
        let (g, appnp) = trained_setup();
        let view = GraphView::full(&g);
        let h = appnp.local_logits(&view);
        let v = 2;
        let l = appnp.predict(v, &view).unwrap();
        let min = min_margin_all_classes(&appnp, &view, &h, v, l);
        for c in 0..2 {
            if c != l {
                assert!(min <= margin_on_view(&appnp, &view, &h, v, l, c) + 1e-12);
            }
        }
    }
}
