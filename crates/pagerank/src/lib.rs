//! # rcw-pagerank
//!
//! Personalized PageRank, worst-case classification margins, and the greedy
//! policy-iteration disturbance search (Procedure PRI) that make k-RCW
//! verification tractable for APPNP classifiers under (k, b)-disturbances
//! (§III-B of the paper).
//!
//! The crate is deliberately model-aware only at the margin level: PPR and
//! value-function computations work on any [`rcw_graph::GraphView`], while the
//! margin helpers take an [`rcw_gnn::Appnp`] to obtain local logits and the
//! teleport probability.

pub mod cache;
pub mod margin;
pub mod ppr;
pub mod pri;

pub use cache::PprCache;
pub use margin::{margin_on_csr, margin_on_view, margin_under_disturbance, min_margin_all_classes};
pub use ppr::{ppr_matrix_exact, ppr_row, propagation_matrix, value_function, DEFAULT_ITERS};
pub use pri::{pri_search, truncate_to_k, PriConfig, PriResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use rcw_graph::{generators, Csr, GraphView};

    /// PPR rows are probability distributions: non-negative, summing to 1.
    /// (Pinned seed sweep replacing `proptest`.)
    #[test]
    fn ppr_rows_are_distributions() {
        for seed in 0u64..24 {
            let n = 3 + (seed as usize * 3) % 9;
            let mut g = generators::erdos_renyi(n, 0.3, seed * 13);
            generators::ensure_connected(&mut g, seed);
            let view = GraphView::full(&g);
            let csr = Csr::from_view(&view);
            let row = ppr_row(&csr, 0, 0.15, 150);
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "seed {seed}: sum {sum}");
            assert!(row.iter().all(|&x| x >= -1e-12), "seed {seed}");
        }
    }

    /// The value-function identity `pi(v)^T r = (1-alpha) X[v]` holds on
    /// random graphs and random objectives.
    #[test]
    fn value_function_identity() {
        for seed in 0u64..24 {
            let n = 3 + (seed as usize * 5) % 7;
            let mut g = generators::erdos_renyi(n, 0.35, seed * 17);
            generators::ensure_connected(&mut g, seed);
            let view = GraphView::full(&g);
            let csr = Csr::from_view(&view);
            let alpha = 0.2;
            let r: Vec<f64> = (0..n)
                .map(|i| ((i * 7 + seed as usize) % 5) as f64 - 2.0)
                .collect();
            let x = value_function(&csr, &r, alpha, 300);
            let pi = ppr_matrix_exact(&view, alpha);
            for (v, &xv) in x.iter().enumerate() {
                let obj: f64 = pi.row(v).iter().zip(&r).map(|(p, ri)| p * ri).sum();
                assert!(
                    (obj - (1.0 - alpha) * xv).abs() < 1e-5,
                    "seed {seed}, node {v}"
                );
            }
        }
    }
}
