//! # rcw-pagerank
//!
//! Personalized PageRank, worst-case classification margins, and the greedy
//! policy-iteration disturbance search (Procedure PRI) that make k-RCW
//! verification tractable for APPNP classifiers under (k, b)-disturbances
//! (§III-B of the paper).
//!
//! The crate is deliberately model-aware only at the margin level: PPR and
//! value-function computations work on any [`rcw_graph::GraphView`], while the
//! margin helpers take an [`rcw_gnn::Appnp`] to obtain local logits and the
//! teleport probability.

pub mod margin;
pub mod ppr;
pub mod pri;

pub use margin::{
    margin_on_csr, margin_on_view, margin_under_disturbance, min_margin_all_classes,
};
pub use ppr::{ppr_matrix_exact, ppr_row, propagation_matrix, value_function, DEFAULT_ITERS};
pub use pri::{pri_search, truncate_to_k, PriConfig, PriResult};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rcw_graph::{generators, Csr, GraphView};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// PPR rows are probability distributions: non-negative, summing to 1.
        #[test]
        fn ppr_rows_are_distributions(n in 3usize..12, seed in 0u64..300) {
            let mut g = generators::erdos_renyi(n, 0.3, seed);
            generators::ensure_connected(&mut g, seed);
            let view = GraphView::full(&g);
            let csr = Csr::from_view(&view);
            let row = ppr_row(&csr, 0, 0.15, 150);
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
            prop_assert!(row.iter().all(|&x| x >= -1e-12));
        }

        /// The value-function identity `pi(v)^T r = (1-alpha) X[v]` holds on
        /// random graphs and random objectives.
        #[test]
        fn value_function_identity(n in 3usize..10, seed in 0u64..200) {
            let mut g = generators::erdos_renyi(n, 0.35, seed);
            generators::ensure_connected(&mut g, seed);
            let view = GraphView::full(&g);
            let csr = Csr::from_view(&view);
            let alpha = 0.2;
            let r: Vec<f64> = (0..n).map(|i| ((i * 7 + seed as usize) % 5) as f64 - 2.0).collect();
            let x = value_function(&csr, &r, alpha, 300);
            let pi = ppr_matrix_exact(&view, alpha);
            for v in 0..n {
                let obj: f64 = pi.row(v).iter().zip(&r).map(|(p, ri)| p * ri).sum();
                prop_assert!((obj - (1.0 - alpha) * x[v]).abs() < 1e-5);
            }
        }
    }
}
