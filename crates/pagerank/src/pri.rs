//! Greedy policy-iteration disturbance search (Procedure PRI, Algorithm 1).
//!
//! Given the direction `r = H[:, c] - H[:, l]` (make label `c` beat the
//! assigned label `l`), PRI searches for the set of node-pair flips that
//! maximizes the PPR-weighted objective `pi_{E}(v)^T r` — equivalently, that
//! minimizes the worst-case margin of `v`. It follows the policy-iteration
//! scheme of certifiable-robustness analysis:
//!
//! 1. compute the value function `X = (I - alpha P)^{-1} r` on the currently
//!    disturbed graph;
//! 2. score every candidate pair `(u, u')` by the gain of flipping it, which
//!    for a row-stochastic propagation is positive exactly when
//!    `(1 - 2 A'_{uu'}) (X[u'] - (X[u] - r[u]) / alpha) > 0`;
//! 3. keep the top-`b` positive-scoring flips per node (the local budget),
//!    toggle them into the working set, and repeat until a fixed point.
//!
//! The procedure guarantees the *local* budget `b`; the caller (Algorithm 1 in
//! `rcw-core`) enforces the global budget `k` by rejecting oversized results.

use crate::ppr::value_function;
use rcw_graph::{Csr, Edge, EdgeSet, GraphView, NodeId};
use std::collections::BTreeMap;

/// Configuration of the policy-iteration search.
#[derive(Clone, Debug)]
pub struct PriConfig {
    /// Teleport probability of the APPNP model under attack.
    pub alpha: f64,
    /// Local budget `b`: at most this many flips incident to any node.
    pub local_budget: usize,
    /// Maximum number of policy-iteration rounds (a safety bound; the search
    /// usually converges in a handful of rounds).
    pub max_rounds: usize,
    /// Number of fixed-point iterations used for the value function.
    pub value_iters: usize,
}

impl Default for PriConfig {
    fn default() -> Self {
        PriConfig {
            alpha: 0.2,
            local_budget: 2,
            max_rounds: 12,
            value_iters: 50,
        }
    }
}

/// Outcome of a PRI search.
#[derive(Clone, Debug, Default)]
pub struct PriResult {
    /// The selected disturbance (node-pair flips).
    pub disturbance: EdgeSet,
    /// Objective value `pi_E(v)^T r` under the selected disturbance.
    pub objective: f64,
    /// Number of policy-iteration rounds executed.
    pub rounds: usize,
}

/// Runs the greedy policy-iteration search.
///
/// * `base_view` — the graph being disturbed (`G`, typically already masked by
///   nothing; witness edges are excluded through `candidates`).
/// * `candidates` — the admissible node pairs (pairs not in the witness; the
///   caller controls whether insertions are allowed by which pairs it lists).
/// * `r` — per-node objective direction (`H[:, c] - H[:, l]`).
/// * `target` — the test node whose PPR row defines the objective.
pub fn pri_search(
    base_view: &GraphView<'_>,
    candidates: &[Edge],
    r: &[f64],
    target: NodeId,
    cfg: &PriConfig,
) -> PriResult {
    let mut current = EdgeSet::new();
    let mut previous: Option<EdgeSet> = None;
    let mut rounds = 0;

    while rounds < cfg.max_rounds && previous.as_ref() != Some(&current) {
        previous = Some(current.clone());
        rounds += 1;

        // Evaluate the value function and the target's PPR row on the
        // currently disturbed graph.
        let disturbed = base_view.flipped(&current);
        let csr = Csr::from_view(&disturbed);
        let x = value_function(&csr, r, cfg.alpha, cfg.value_iters);
        let pi = crate::ppr::ppr_row(&csr, target, cfg.alpha, cfg.value_iters);

        // Score candidates and keep the top-b positive flips per node.
        // The score is the first-order change of the objective pi(v)^T r when
        // flipping (u, u'): each endpoint's contribution is its visit
        // probability (PPR mass, degree-normalized) times how much the new/
        // lost neighbor exceeds the endpoint's current neighborhood average
        // `(X[u] - r[u]) / alpha`. This refines the paper's printed score for
        // undirected flips, where both endpoints' rows of P change at once.
        let mut per_node: BTreeMap<NodeId, Vec<(f64, Edge)>> = BTreeMap::new();
        for &(u, v) in candidates {
            if u == v || u >= csr.num_nodes() || v >= csr.num_nodes() {
                continue;
            }
            let present = disturbed.has_edge(u, v);
            let sign = if present { -1.0 } else { 1.0 };
            let du = csr.degree(u) as f64 + 1.0;
            let dv = csr.degree(v) as f64 + 1.0;
            let gain_u = pi[u] / du * (x[v] - (x[u] - r[u]) / cfg.alpha);
            let gain_v = pi[v] / dv * (x[u] - (x[v] - r[v]) / cfg.alpha);
            let gain = sign * (gain_u + gain_v);
            if gain > 0.0 {
                per_node.entry(u).or_default().push((gain, (u, v)));
            }
        }
        let mut proposed = EdgeSet::new();
        for (_node, mut list) in per_node {
            list.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
            for (_, (u, v)) in list.into_iter().take(cfg.local_budget) {
                proposed.insert(u, v);
            }
        }

        // Symmetric difference update (line 8 of Procedure PRI).
        current = current.symmetric_difference(&proposed);

        // Enforce the local budget on the working set: drop excess flips of
        // over-budget nodes deterministically (highest edges dropped first).
        current = enforce_local_budget(&current, cfg.local_budget);

        if proposed.is_empty() {
            break;
        }
    }

    // Final objective under the selected disturbance.
    let disturbed = base_view.flipped(&current);
    let csr = Csr::from_view(&disturbed);
    let x = value_function(&csr, r, cfg.alpha, cfg.value_iters);
    let objective = (1.0 - cfg.alpha) * x.get(target).copied().unwrap_or(0.0);

    PriResult {
        disturbance: current,
        objective,
        rounds,
    }
}

/// Drops flips from nodes that exceed the local budget, keeping the
/// lexicographically smallest edges (deterministic).
fn enforce_local_budget(set: &EdgeSet, b: usize) -> EdgeSet {
    if b == 0 {
        return EdgeSet::new();
    }
    let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
    let mut out = EdgeSet::new();
    for (u, v) in set.iter() {
        let cu = *counts.get(&u).unwrap_or(&0);
        let cv = *counts.get(&v).unwrap_or(&0);
        if cu < b && cv < b {
            out.insert(u, v);
            *counts.entry(u).or_insert(0) += 1;
            *counts.entry(v).or_insert(0) += 1;
        }
    }
    out
}

/// Truncates a disturbance to at most `k` flips, keeping the ones ranked most
/// valuable by re-scoring against the value function of the *undisturbed*
/// view. Used when PRI returns more flips than the global budget allows but
/// the caller still wants the best `k`-subset as a candidate.
pub fn truncate_to_k(
    base_view: &GraphView<'_>,
    disturbance: &EdgeSet,
    r: &[f64],
    alpha: f64,
    k: usize,
) -> EdgeSet {
    if disturbance.len() <= k {
        return disturbance.clone();
    }
    let csr = Csr::from_view(base_view);
    let x = value_function(&csr, r, alpha, 50);
    let mut scored: Vec<(f64, Edge)> = disturbance
        .iter()
        .map(|(u, v)| {
            let present = base_view.has_edge(u, v);
            let sign = if present { -1.0 } else { 1.0 };
            let du = csr.degree(u) as f64 + 1.0;
            let dv = csr.degree(v) as f64 + 1.0;
            let gain_u = (x[v] - (x[u] - r[u]) / alpha) / du;
            let gain_v = (x[u] - (x[v] - r[v]) / alpha) / dv;
            (sign * (gain_u + gain_v), (u, v))
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().take(k).map(|(_, e)| e).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcw_graph::Graph;

    /// A barbell: two triangles joined by a bridge. Node 0 is the target.
    fn barbell() -> Graph {
        let mut g = Graph::with_nodes(6);
        for &(u, v) in &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)] {
            g.add_edge(u, v);
        }
        g
    }

    #[test]
    fn pri_increases_the_objective() {
        let g = barbell();
        let view = GraphView::full(&g);
        // objective direction: mass on the far triangle is good for the attacker
        let r = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let cfg = PriConfig {
            alpha: 0.3,
            local_budget: 2,
            max_rounds: 8,
            value_iters: 80,
        };
        let candidates: Vec<Edge> = vec![(0, 3), (0, 4), (0, 5), (0, 1), (0, 2)];
        let result = pri_search(&view, &candidates, &r, 0, &cfg);
        // baseline objective with no disturbance
        let csr = Csr::from_view(&view);
        let base_obj = (1.0 - cfg.alpha) * value_function(&csr, &r, cfg.alpha, 80)[0];
        assert!(
            result.objective > base_obj,
            "PRI should improve the objective: {} vs {}",
            result.objective,
            base_obj
        );
        assert!(!result.disturbance.is_empty());
        assert!(result.rounds >= 1);
        // inserting edges towards the far triangle is the expected move
        let inserts: Vec<Edge> = result
            .disturbance
            .iter()
            .filter(|&(u, v)| !g.has_edge(u, v))
            .collect();
        assert!(
            !inserts.is_empty(),
            "expected at least one insertion towards the high-r region"
        );
    }

    #[test]
    fn pri_respects_the_local_budget() {
        let g = barbell();
        let view = GraphView::full(&g);
        let r = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let cfg = PriConfig {
            alpha: 0.3,
            local_budget: 1,
            max_rounds: 6,
            value_iters: 60,
        };
        let candidates: Vec<Edge> = vec![(0, 3), (0, 4), (0, 5), (1, 3), (1, 4)];
        let result = pri_search(&view, &candidates, &r, 0, &cfg);
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (u, v) in result.disturbance.iter() {
            *counts.entry(u).or_insert(0) += 1;
            *counts.entry(v).or_insert(0) += 1;
        }
        assert!(
            counts.values().all(|&c| c <= 1),
            "local budget violated: {counts:?}"
        );
    }

    #[test]
    fn pri_converges_and_terminates() {
        let g = barbell();
        let view = GraphView::full(&g);
        let r = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let cfg = PriConfig::default();
        let candidates: Vec<Edge> = g.edge_vec();
        let result = pri_search(&view, &candidates, &r, 0, &cfg);
        assert!(result.rounds <= cfg.max_rounds);
    }

    #[test]
    fn empty_candidates_give_empty_disturbance() {
        let g = barbell();
        let view = GraphView::full(&g);
        let r = vec![1.0; 6];
        let result = pri_search(&view, &[], &r, 0, &PriConfig::default());
        assert!(result.disturbance.is_empty());
    }

    #[test]
    fn truncate_keeps_at_most_k() {
        let g = barbell();
        let view = GraphView::full(&g);
        let r = vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0];
        let d: EdgeSet = [(0usize, 3usize), (0, 4), (0, 5), (1, 3)]
            .into_iter()
            .collect();
        let t = truncate_to_k(&view, &d, &r, 0.3, 2);
        assert_eq!(t.len(), 2);
        let t_all = truncate_to_k(&view, &d, &r, 0.3, 10);
        assert_eq!(t_all.len(), 4);
    }

    #[test]
    fn enforce_local_budget_zero_clears_everything() {
        let d: EdgeSet = [(0usize, 1usize), (2, 3)].into_iter().collect();
        assert!(enforce_local_budget(&d, 0).is_empty());
        assert_eq!(enforce_local_budget(&d, 1).len(), 2);
    }
}
