//! CF-GNNExplainer: counterfactual explanations via minimal edge deletions.
//!
//! The original method learns a binary perturbation mask over the adjacency
//! matrix that flips the prediction while deleting as few edges as possible.
//! This reproduction keeps the objective and replaces the gradient loop with
//! `epochs` rounds of greedy coordinate descent: in each round every candidate
//! edge is scored by how much deleting it (on top of the current deletion set)
//! lowers the predicted label's margin, and the best-scoring edge is added to
//! the deletion set; the search stops as soon as the prediction flips or the
//! per-node edge budget is exhausted.

use crate::{local_candidate_edges, BaselineConfig};
use rcw_gnn::GnnModel;
use rcw_graph::{EdgeSet, EdgeSubgraph, Graph, GraphView, NodeId};

/// The CF-GNNExplainer baseline.
#[derive(Clone, Debug, Default)]
pub struct CfGnnExplainer {
    cfg: BaselineConfig,
}

impl CfGnnExplainer {
    /// Creates the explainer with the given configuration.
    pub fn new(cfg: BaselineConfig) -> Self {
        CfGnnExplainer { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    /// Explains a single node: returns the (minimal, greedy) set of edges
    /// whose deletion flips the node's prediction. If no flip is achievable
    /// within the budget, the best-effort deletion set found so far is
    /// returned (mirroring the original method, which also may fail to flip).
    pub fn explain_node(&self, model: &dyn GnnModel, graph: &Graph, v: NodeId) -> EdgeSubgraph {
        let full = GraphView::full(graph);
        let label = match model.predict(v, &full) {
            Some(l) => l,
            None => return EdgeSubgraph::new(),
        };
        let candidates = local_candidate_edges(graph, v, &self.cfg);
        let mut deleted = EdgeSet::new();

        for _epoch in 0..self.cfg.epochs {
            if deleted.len() >= self.cfg.max_edges {
                break;
            }
            // has the prediction flipped already?
            let view = GraphView::without(graph, &deleted);
            if model.predict(v, &view) != Some(label) {
                break;
            }
            // score every remaining candidate by the margin drop it causes
            let mut best: Option<(f64, (usize, usize))> = None;
            for &(a, b) in &candidates {
                if deleted.contains(a, b) {
                    continue;
                }
                let mut trial = deleted.clone();
                trial.insert(a, b);
                let trial_view = GraphView::without(graph, &trial);
                let margin = model.margin(v, label, &trial_view);
                match best {
                    Some((m, _)) if margin >= m => {}
                    _ => best = Some((margin, (a, b))),
                }
            }
            match best {
                Some((_, (a, b))) => {
                    deleted.insert(a, b);
                }
                None => break,
            }
        }

        let mut out = EdgeSubgraph::from_edges(deleted.iter());
        out.add_node(v);
        out
    }

    /// Explains a set of nodes as the union of instance-level explanations —
    /// the aggregation the paper uses when comparing sizes.
    pub fn explain(
        &self,
        model: &dyn GnnModel,
        graph: &Graph,
        test_nodes: &[NodeId],
    ) -> EdgeSubgraph {
        let mut out = EdgeSubgraph::new();
        for &v in test_nodes {
            out.extend(&self.explain_node(model, graph, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_clique_setup;

    #[test]
    fn explanation_contains_the_test_node_and_only_real_edges() {
        let (g, gcn, t) = two_clique_setup();
        let exp = CfGnnExplainer::default().explain_node(&gcn, &g, t);
        assert!(exp.contains_node(t));
        assert!(exp.edges().iter().all(|(u, v)| g.has_edge(u, v)));
        assert!(exp.num_edges() <= BaselineConfig::default().max_edges);
    }

    #[test]
    fn deleting_the_explanation_tends_to_flip_the_prediction() {
        let (g, gcn, t) = two_clique_setup();
        let full = GraphView::full(&g);
        let label = gcn.predict(t, &full).unwrap();
        let exp = CfGnnExplainer::default().explain_node(&gcn, &g, t);
        if exp.num_edges() > 0 {
            let view = GraphView::without(&g, exp.edges());
            // the greedy search stops when it flips; if it found anything that
            // flips, the counterfactual property must hold
            let flipped = gcn.predict(t, &view) != Some(label);
            let margin_dropped = gcn.margin(t, label, &view) <= gcn.margin(t, label, &full);
            assert!(flipped || margin_dropped);
        }
    }

    #[test]
    fn union_explanation_covers_each_node() {
        let (g, gcn, t) = two_clique_setup();
        let exp = CfGnnExplainer::default().explain(&gcn, &g, &[t, 0, 7]);
        for v in [t, 0, 7] {
            assert!(exp.contains_node(v));
        }
    }

    #[test]
    fn zero_epoch_config_returns_empty_deletions() {
        let (g, gcn, t) = two_clique_setup();
        let cfg = BaselineConfig {
            epochs: 0,
            ..BaselineConfig::default()
        };
        let exp = CfGnnExplainer::new(cfg).explain_node(&gcn, &g, t);
        assert_eq!(exp.num_edges(), 0);
    }
}
