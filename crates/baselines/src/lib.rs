//! # rcw-baselines
//!
//! Re-implementations of the two explainers the paper compares against:
//!
//! * [`CfGnnExplainer`] — CF-GNNExplainer (Lucic et al., AISTATS 2022):
//!   counterfactual explanations via minimal edge deletions. The original is a
//!   learned perturbation mask; this reproduction replaces the gradient-based
//!   mask optimization with an iterative greedy deletion search over the same
//!   objective (flip the prediction with as few deleted edges as possible).
//! * [`Cf2Explainer`] — CF² (Tan et al., WWW 2022): explanations that are both
//!   factual and counterfactual, obtained by optimizing a weighted combination
//!   of both objectives. Reproduced as an iterative greedy forward selection
//!   over candidate edges with the same weighted objective.
//!
//! Both explainers work per test node and — like the originals — produce the
//! union of instance-level subgraphs when asked to explain a set of nodes,
//! which is why their explanations are larger and less stable than RoboGExp's
//! (Table III of the paper). Neither offers robustness guarantees, and both
//! must re-run their optimization from scratch whenever the graph is
//! disturbed; the experiment harness measures exactly that.

pub mod cf2;
pub mod cfgnn;

pub use cf2::Cf2Explainer;
pub use cfgnn::CfGnnExplainer;

use rcw_graph::traversal::k_hop_neighborhood;
use rcw_graph::{Edge, EdgeSet, Graph, NodeId};

/// Shared knobs of the baseline explainers.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// How many hops around the test node candidate edges are drawn from.
    pub hops: usize,
    /// Maximum number of candidate edges considered per test node.
    pub max_candidates: usize,
    /// Maximum explanation size (edges) per test node.
    pub max_edges: usize,
    /// Optimization epochs — each epoch re-scores every candidate edge
    /// against the current mask, mimicking the original methods' iterative
    /// (learning-based) mask optimization.
    pub epochs: usize,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            hops: 2,
            max_candidates: 48,
            max_edges: 12,
            epochs: 3,
        }
    }
}

/// Collects the candidate edges around a test node, nearest-first, capped at
/// `max_candidates`.
pub(crate) fn local_candidate_edges(graph: &Graph, v: NodeId, cfg: &BaselineConfig) -> Vec<Edge> {
    let hood = k_hop_neighborhood(graph, v, cfg.hops);
    let mut seen = EdgeSet::new();
    let mut out = Vec::new();
    // incident edges first
    for u in graph.neighbors(v) {
        if seen.insert(v, u) {
            out.push(rcw_graph::norm_edge(v, u));
        }
    }
    // then edges among the neighborhood
    'outer: for &u in &hood {
        for w in graph.neighbors(u) {
            if hood.contains(&w) && seen.insert(u, w) {
                out.push(rcw_graph::norm_edge(u, w));
                if out.len() >= cfg.max_candidates {
                    break 'outer;
                }
            }
        }
    }
    out.truncate(cfg.max_candidates);
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use rcw_gnn::{Gcn, TrainConfig};
    use rcw_graph::{Graph, GraphView};

    /// A two-clique graph with a boundary test node, plus a trained GCN.
    pub fn two_clique_setup() -> (Graph, Gcn, usize) {
        let mut g = Graph::new();
        for i in 0..10 {
            let class = usize::from(i >= 5);
            let feats = if class == 0 {
                vec![1.0, 0.0]
            } else {
                vec![0.0, 1.0]
            };
            g.add_labeled_node(feats, class);
        }
        for u in 0..5 {
            for v in (u + 1)..5 {
                g.add_edge(u, v);
            }
        }
        for u in 5..10 {
            for v in (u + 1)..10 {
                g.add_edge(u, v);
            }
        }
        let t = g.add_labeled_node(vec![0.05, 0.25], 0);
        g.add_edge(t, 0);
        g.add_edge(t, 1);
        g.add_edge(t, 2);
        let mut gcn = Gcn::new(&[2, 8, 2], 9);
        let train: Vec<usize> = (0..10).collect();
        gcn.train(
            &GraphView::full(&g),
            &train,
            &TrainConfig {
                epochs: 120,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
        );
        (g, gcn, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use testutil::two_clique_setup;

    #[test]
    fn candidates_are_local_and_capped() {
        let (g, _m, t) = two_clique_setup();
        let cfg = BaselineConfig {
            max_candidates: 5,
            ..BaselineConfig::default()
        };
        let cands = local_candidate_edges(&g, t, &cfg);
        assert!(cands.len() <= 5);
        assert!(!cands.is_empty());
        // incident edges come first
        assert!(cands[0].0 == t || cands[0].1 == t);
        // all candidates are real edges
        assert!(cands.iter().all(|&(u, v)| g.has_edge(u, v)));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = BaselineConfig::default();
        assert!(cfg.hops >= 1 && cfg.max_edges >= 1 && cfg.epochs >= 1);
    }
}
