//! CF²: explanations that are simultaneously factual and counterfactual.
//!
//! The original method (Tan et al., WWW 2022) learns a soft edge mask that
//! minimizes `alpha * L_factual + (1 - alpha) * L_counterfactual + lambda * |S|`.
//! This reproduction keeps the same weighted objective and optimizes it with
//! `epochs` rounds of greedy forward selection over the local candidate
//! edges: in each round every candidate is scored by how much *adding* it to
//! the explanation improves the combined objective
//! (margin of the label on `Gs` up, margin on `G \ Gs` down), and the best one
//! is kept. Like the original, it is optimized per test node and has no
//! robustness guarantee.

use crate::{local_candidate_edges, BaselineConfig};
use rcw_gnn::GnnModel;
use rcw_graph::{EdgeSet, EdgeSubgraph, Graph, GraphView, NodeId};

/// The CF² baseline.
#[derive(Clone, Debug)]
pub struct Cf2Explainer {
    cfg: BaselineConfig,
    /// Weight of the factual term in the combined objective (0..1).
    factual_weight: f64,
    /// Sparsity penalty per selected edge.
    sparsity: f64,
}

impl Default for Cf2Explainer {
    fn default() -> Self {
        Cf2Explainer {
            cfg: BaselineConfig {
                // CF2 optimizes a harder joint objective; the original's
                // training loop is correspondingly longer.
                epochs: 6,
                max_edges: 16,
                ..BaselineConfig::default()
            },
            factual_weight: 0.5,
            sparsity: 0.01,
        }
    }
}

impl Cf2Explainer {
    /// Creates an explainer with an explicit configuration and weights.
    pub fn new(cfg: BaselineConfig, factual_weight: f64, sparsity: f64) -> Self {
        Cf2Explainer {
            cfg,
            factual_weight: factual_weight.clamp(0.0, 1.0),
            sparsity: sparsity.max(0.0),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BaselineConfig {
        &self.cfg
    }

    /// Combined objective of a candidate explanation for node `v` with label
    /// `l`: higher is better. Factual term rewards a positive margin on the
    /// explanation alone; counterfactual term rewards a negative margin on the
    /// remainder; the sparsity term penalizes size.
    fn objective(
        &self,
        model: &dyn GnnModel,
        graph: &Graph,
        edges: &EdgeSet,
        v: NodeId,
        label: usize,
    ) -> f64 {
        let only = GraphView::restricted_to(graph, edges);
        let remainder = GraphView::without(graph, edges);
        let factual = model.margin(v, label, &only);
        let counterfactual = -model.margin(v, label, &remainder);
        self.factual_weight * factual + (1.0 - self.factual_weight) * counterfactual
            - self.sparsity * edges.len() as f64
    }

    /// Explains a single node by greedy forward selection on the combined
    /// factual/counterfactual objective.
    pub fn explain_node(&self, model: &dyn GnnModel, graph: &Graph, v: NodeId) -> EdgeSubgraph {
        let full = GraphView::full(graph);
        let label = match model.predict(v, &full) {
            Some(l) => l,
            None => return EdgeSubgraph::new(),
        };
        let candidates = local_candidate_edges(graph, v, &self.cfg);
        let mut selected = EdgeSet::new();
        let mut current_obj = self.objective(model, graph, &selected, v, label);

        for _epoch in 0..self.cfg.epochs {
            if selected.len() >= self.cfg.max_edges {
                break;
            }
            // early exit when both properties already hold
            let only = GraphView::restricted_to(graph, &selected);
            let remainder = GraphView::without(graph, &selected);
            let factual_ok = model.predict(v, &only) == Some(label);
            let counterfactual_ok = model.predict(v, &remainder) != Some(label);
            if factual_ok && counterfactual_ok {
                break;
            }
            // greedy step: add the candidate that improves the objective most
            let mut best: Option<(f64, (usize, usize))> = None;
            for &(a, b) in &candidates {
                if selected.contains(a, b) {
                    continue;
                }
                let mut trial = selected.clone();
                trial.insert(a, b);
                let obj = self.objective(model, graph, &trial, v, label);
                match best {
                    Some((m, _)) if obj <= m => {}
                    _ => best = Some((obj, (a, b))),
                }
            }
            match best {
                Some((obj, (a, b))) if obj > current_obj || !factual_ok => {
                    selected.insert(a, b);
                    current_obj = obj;
                }
                _ => break,
            }
        }

        let mut out = EdgeSubgraph::from_edges(selected.iter());
        out.add_node(v);
        out
    }

    /// Explains a set of nodes as the union of instance-level explanations.
    pub fn explain(
        &self,
        model: &dyn GnnModel,
        graph: &Graph,
        test_nodes: &[NodeId],
    ) -> EdgeSubgraph {
        let mut out = EdgeSubgraph::new();
        for &v in test_nodes {
            out.extend(&self.explain_node(model, graph, v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::two_clique_setup;

    #[test]
    fn explanation_is_bounded_and_well_formed() {
        let (g, gcn, t) = two_clique_setup();
        let cf2 = Cf2Explainer::default();
        let exp = cf2.explain_node(&gcn, &g, t);
        assert!(exp.contains_node(t));
        assert!(exp.num_edges() <= cf2.config().max_edges);
        assert!(exp.edges().iter().all(|(u, v)| g.has_edge(u, v)));
    }

    #[test]
    fn selected_edges_improve_the_factual_margin() {
        let (g, gcn, t) = two_clique_setup();
        let full = GraphView::full(&g);
        let label = gcn.predict(t, &full).unwrap();
        let cf2 = Cf2Explainer::default();
        let exp = cf2.explain_node(&gcn, &g, t);
        if exp.num_edges() > 0 {
            let only = GraphView::restricted_to(&g, exp.edges());
            let empty = GraphView::restricted_to(&g, &EdgeSet::new());
            assert!(
                gcn.margin(t, label, &only) >= gcn.margin(t, label, &empty) - 1e-9,
                "selected support edges should not hurt the factual margin"
            );
        }
    }

    #[test]
    fn union_explanation_is_at_least_as_large_as_single_node() {
        let (g, gcn, t) = two_clique_setup();
        let cf2 = Cf2Explainer::default();
        let single = cf2.explain_node(&gcn, &g, t);
        let union = cf2.explain(&gcn, &g, &[t, 0]);
        assert!(union.size() >= single.size());
    }

    #[test]
    fn weights_are_clamped() {
        let cf2 = Cf2Explainer::new(BaselineConfig::default(), 7.0, -3.0);
        // internal weights must be sanitized
        let (g, gcn, t) = two_clique_setup();
        let exp = cf2.explain_node(&gcn, &g, t);
        assert!(exp.num_nodes() >= 1);
    }
}
