//! # robogexp
//!
//! Umbrella crate for the Rust reproduction of *"Generating Robust
//! Counterfactual Witnesses for Graph Neural Networks"* (ICDE 2024).
//!
//! A **k-robust counterfactual witness (k-RCW)** of a GNN node classification
//! is a subgraph that is simultaneously:
//! * **factual** — evaluating the classifier on the witness alone reproduces
//!   the test nodes' labels,
//! * **counterfactual** — removing the witness's edges from the graph flips
//!   those labels, and
//! * **robust** — both properties survive any disturbance that flips up to
//!   `k` node pairs outside the witness.
//!
//! This crate re-exports the whole workspace under stable module names:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `rcw-graph` | attributed graphs, views, disturbances, partitions |
//! | [`linalg`] | `rcw-linalg` | dense matrices, solvers, activations |
//! | [`gnn`] | `rcw-gnn` | GCN / APPNP / GraphSAGE / GAT, training |
//! | [`pagerank`] | `rcw-pagerank` | PPR, worst-case margins, policy iteration |
//! | [`core`] | `rcw-core` | witnesses, verification, RoboGExp, paraRoboGExp |
//! | [`baselines`] | `rcw-baselines` | CF², CF-GNNExplainer re-implementations |
//! | [`metrics`] | `rcw-metrics` | GED, Fidelity±, result tables |
//! | [`datasets`] | `rcw-datasets` | synthetic BAHouse / CiteSeer / PPI / Reddit, molecules, provenance |
//! | [`server`] | `rcw-server` | std-only HTTP serving layer over `WitnessEngine` (wire codec, pool, client) |
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through and
//! `crates/bench` for the experiment harness that regenerates every table and
//! figure of the paper.

pub use rcw_baselines as baselines;
pub use rcw_core as core;
pub use rcw_datasets as datasets;
pub use rcw_gnn as gnn;
pub use rcw_graph as graph;
pub use rcw_linalg as linalg;
pub use rcw_metrics as metrics;
pub use rcw_pagerank as pagerank;
pub use rcw_server as server;

/// Most-used types, for `use robogexp::prelude::*`.
pub mod prelude {
    pub use rcw_baselines::{Cf2Explainer, CfGnnExplainer};
    pub use rcw_core::{
        ParaRoboGExp, RcwConfig, RoboGExp, VerifyOutcome, Witness, WitnessEngine, WitnessLevel,
    };
    pub use rcw_datasets::{Dataset, Scale};
    pub use rcw_gnn::{Appnp, Gcn, GnnModel, TrainConfig};
    pub use rcw_graph::{EdgeSet, EdgeSubgraph, Graph, GraphView, NodeId};
    pub use rcw_metrics::{fidelity_minus, fidelity_plus, normalized_ged};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_main_entry_points() {
        // compile-time smoke test: the umbrella exposes everything needed for
        // the quickstart without reaching into individual crates.
        let cfg = RcwConfig::with_budgets(2, 1);
        assert_eq!(cfg.k, 2);
        let g = Graph::with_nodes(3);
        assert_eq!(g.num_nodes(), 3);
        let _scale = Scale::Tiny;
    }
}
