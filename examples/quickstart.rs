//! Quickstart: train a small APPNP classifier on a synthetic citation graph,
//! generate a k-robust counterfactual witness for a few test nodes, verify
//! it, and report its quality metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use robogexp::datasets::citeseer;
use robogexp::prelude::*;

fn main() {
    // 1. Build a CiteSeer-like dataset and train the classifier to explain.
    let ds = citeseer::build(Scale::Small, 7);
    println!(
        "dataset {}: {} nodes, {} edges, {} classes",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes()
    );
    let appnp = ds.train_appnp(24, 1);
    println!("APPNP test accuracy: {:.2}", ds.test_accuracy(&appnp));

    // 2. Pick test nodes and generate a k-RCW explanation.
    let test_nodes = ds.pick_test_nodes(5, 3);
    let cfg = RcwConfig::with_budgets(4, 2);
    let generator = RoboGExp::for_appnp(&appnp, cfg);
    let result = generator.generate(&ds.graph, &test_nodes);
    println!(
        "witness: {} nodes, {} edges (level {:?}, {} inference calls, {:.1} ms)",
        result.witness.subgraph.num_nodes(),
        result.witness.subgraph.num_edges(),
        result.level,
        result.stats.inference_calls,
        result.stats.elapsed.as_secs_f64() * 1000.0
    );

    // 3. Re-verify the witness and report fidelity metrics.
    let outcome = generator.verify(&ds.graph, &result.witness);
    println!("re-verification level: {:?}", outcome.level);
    let fid_plus = fidelity_plus(&appnp, &ds.graph, &result.witness.subgraph, &test_nodes);
    let fid_minus = fidelity_minus(&appnp, &ds.graph, &result.witness.subgraph, &test_nodes);
    println!("Fidelity+ = {fid_plus:.2} (higher is better), Fidelity- = {fid_minus:.2} (lower is better)");
}
