//! Case study (paper Example 2 / Example 3): the "vulnerable zone" of a cyber
//! provenance graph. The robust witness for the breach target contains the
//! true attack paths (command prompt + privileged credential files) and stays
//! unchanged no matter how the deceptive DDoS decoys are rewired.
//!
//! Run with: `cargo run --release --example cyber_provenance`

use robogexp::datasets::provenance::{self, VULNERABLE};
use robogexp::prelude::*;

fn main() {
    let (graph, meta) = provenance::provenance_graph(8, 40, 3);
    println!(
        "provenance graph: {} nodes, {} edges, {} decoy targets",
        graph.num_nodes(),
        graph.num_edges(),
        meta.decoys.len()
    );

    // Train the vulnerability classifier on the labeled provenance graph.
    let labeled: Vec<NodeId> = graph
        .node_ids()
        .filter(|&v| graph.label(v).is_some())
        .collect();
    let mut appnp = Appnp::new(&[graph.feature_dim(), 16, 2], 0.15, 12, 5);
    appnp.train(&GraphView::full(&graph), &labeled, &TrainConfig::default());

    let label = appnp
        .predict(meta.breach_sh, &GraphView::full(&graph))
        .unwrap();
    println!("breach.sh classified as {} (1 = vulnerable)", label);

    // Generate a k-RCW for the breach target with k = 3 (the longest deceptive path).
    let cfg = RcwConfig::with_budgets(3, 2);
    let result = RoboGExp::for_appnp(&appnp, cfg).generate(&graph, &[meta.breach_sh]);
    let witness = &result.witness.subgraph;
    println!(
        "robust witness: {} nodes / {} edges, level {:?}",
        witness.num_nodes(),
        witness.num_edges(),
        result.level
    );

    // The witness should cover the true attack path and avoid the decoys.
    for (name, node) in [
        ("cmd.exe", meta.cmd_exe),
        ("/.ssh/id_rsa", meta.ssh_key),
        ("/etc/sudoers", meta.sudoers),
    ] {
        println!(
            "  contains {name}: {}",
            witness.contains_node(node) || witness.edges().degree_of(node) > 0
        );
    }
    let decoys_in_witness = meta
        .decoys
        .iter()
        .filter(|&&d| witness.contains_node(d))
        .count();
    println!(
        "  decoy targets inside the witness: {decoys_in_witness} / {}",
        meta.decoys.len()
    );
    if label == VULNERABLE {
        println!("=> the files in the witness form the zone that must be protected");
    }
}
