//! Demonstrates paraRoboGExp: generating witnesses for a batch of test nodes
//! on the largest synthetic dataset with 1, 2 and 4 workers and comparing
//! wall-clock time and the amount of synchronized bitmap state.
//!
//! Run with: `cargo run --release --example parallel_scaling`

use robogexp::datasets::reddit;
use robogexp::prelude::*;
use std::time::Instant;

fn main() {
    let ds = reddit::build(Scale::Small, 3);
    println!(
        "Reddit-like dataset: {} nodes, {} edges",
        ds.graph.num_nodes(),
        ds.graph.num_edges()
    );
    let appnp = ds.train_appnp(24, 1);
    let tests = ds.pick_test_nodes(6, 13);
    println!("generating witnesses for {} test nodes", tests.len());

    for workers in [1usize, 2, 4] {
        let cfg = RcwConfig::with_budgets(4, 2);
        let start = Instant::now();
        let out = ParaRoboGExp::for_appnp(&appnp, cfg, workers).generate(&ds.graph, &tests);
        println!(
            "{workers} worker(s): {:.1} ms, {} rounds, witness {} edges (level {:?}), {} bytes synchronized",
            start.elapsed().as_secs_f64() * 1000.0,
            out.parallel.rounds,
            out.result.witness.subgraph.num_edges(),
            out.result.level,
            out.parallel.bytes_synchronized
        );
    }
}
