//! Case study (paper Example 1 / Example 4 / Fig. 5): the robust witness of a
//! mutagenic molecule is the toxicophore (aldehyde / nitro group) and stays
//! invariant across a family of molecule variants that differ by one bond,
//! while a non-robust baseline explanation drifts.
//!
//! Run with: `cargo run --release --example mutagenicity_case`

use robogexp::baselines::Cf2Explainer;
use robogexp::datasets::molecules::{self, MUTAGENIC};
use robogexp::prelude::*;

fn main() {
    // Train a classifier on a pool of labeled molecules.
    let ds = molecules::build(Scale::Small, 1);
    let appnp = ds.train_appnp(16, 1);
    println!(
        "molecule classifier accuracy: {:.2}",
        ds.test_accuracy(&appnp)
    );

    // The Fig. 5 family: a base molecule and two variants missing one bond each.
    let family = molecules::molecule_family();
    let cfg = RcwConfig::with_budgets(1, 1);
    let mut base_witness: Option<EdgeSubgraph> = None;
    let mut base_cf2: Option<EdgeSubgraph> = None;

    for (i, molecule) in family.iter().enumerate() {
        let target = molecule.test_node();
        let label = appnp
            .predict(target, &GraphView::full(&molecule.graph))
            .unwrap();
        let rcw = RoboGExp::for_appnp(&appnp, cfg.clone())
            .generate(&molecule.graph, &[target])
            .witness
            .subgraph;
        let cf2 = Cf2Explainer::default().explain(&appnp, &molecule.graph, &[target]);

        // how many explanation atoms are mutagenic (toxicophore members)?
        let toxic_hits = rcw
            .nodes()
            .iter()
            .filter(|&&v| molecule.graph.label(v) == Some(MUTAGENIC))
            .count();
        let (ged_rcw, ged_cf2) = match (&base_witness, &base_cf2) {
            (Some(bw), Some(bc)) => (normalized_ged(bw, &rcw), normalized_ged(bc, &cf2)),
            _ => (0.0, 0.0),
        };
        println!(
            "variant G3^{i}: target label {label}, RCW size {} ({toxic_hits} toxicophore atoms), \
             GED(RCW)={ged_rcw:.2}, GED(CF2)={ged_cf2:.2}",
            rcw.size()
        );
        if i == 0 {
            base_witness = Some(rcw);
            base_cf2 = Some(cf2);
        }
    }
    println!("a robust witness should keep GED(RCW) at 0.00 across the family");
}
