//! Case study (paper Fig. 5 right): explaining a topic change with new
//! citations. When a paper gains citations from a different area and the
//! classifier's label flips, RoboGExp responds with a new witness that mostly
//! consists of the new cross-topic citations.
//!
//! Run with: `cargo run --release --example citation_topics`

use robogexp::datasets::citeseer;
use robogexp::prelude::*;

fn main() {
    let ds = citeseer::build(Scale::Small, 3);
    let appnp = ds.train_appnp(24, 3);
    let v = ds.test_pool[0];
    let full = GraphView::full(&ds.graph);
    let old_label = appnp.predict(v, &full).unwrap();
    println!("paper node {v} initially classified into area {old_label}");

    let cfg = RcwConfig::with_budgets(2, 1);
    let before = RoboGExp::for_appnp(&appnp, cfg.clone()).generate(&ds.graph, &[v]);
    println!(
        "witness before: {} edges (level {:?})",
        before.witness.subgraph.num_edges(),
        before.level
    );

    // New citations arrive from a different area.
    let new_refs: Vec<NodeId> = ds
        .graph
        .node_ids()
        .filter(|&u| ds.graph.label(u).is_some() && ds.graph.label(u) != Some(old_label))
        .take(8)
        .collect();
    let flips: Vec<(NodeId, NodeId)> = new_refs.iter().map(|&u| (v, u)).collect();
    let disturbed = ds.graph.flip_edges(&flips);
    let new_label = appnp.predict(v, &GraphView::full(&disturbed)).unwrap();
    println!(
        "after {} new cross-area citations the label becomes {new_label}",
        new_refs.len()
    );

    let after = RoboGExp::for_appnp(&appnp, cfg).generate(&disturbed, &[v]);
    let new_citation_edges = after
        .witness
        .subgraph
        .edges()
        .iter()
        .filter(|&(a, b)| flips.contains(&(a, b)) || flips.contains(&(b, a)))
        .count();
    println!(
        "witness after: {} edges, {} of them are the new citations, GED to the old witness = {:.2}",
        after.witness.subgraph.num_edges(),
        new_citation_edges,
        normalized_ged(&before.witness.subgraph, &after.witness.subgraph)
    );
}
